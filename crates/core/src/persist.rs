//! Durability for the CoCa server: checksummed snapshots + a write-ahead
//! log, with deterministic crash-point fault injection.
//!
//! The server is the single point holding everything the fleet built
//! together — the global cache table, the Φ pipeline, the queue-and-flush
//! pending uploads — so a crash without persistence silently discards
//! every client's contribution. This module gives [`crate::server::CocaServer`]
//! a WAL-before-mutation discipline:
//!
//! * Every state-mutating server event (request, upload, merge, batch,
//!   leave, flush, watermark change) is appended to the WAL **before** the
//!   mutation applies, as one CRC-framed JSON record.
//! * Every `wal_rotate_records` appends the log rotates: the current
//!   snapshot+WAL generation becomes the *previous* generation and a fresh
//!   checksummed snapshot of the full server state opens the next one.
//! * Recovery loads the newest valid snapshot (falling back one generation
//!   when the current snapshot is corrupt), replays the WAL tail through
//!   the same merge kernels the live server runs, and truncates a torn
//!   final record via its per-record CRC. Replay is bit-identical: a
//!   recovered run produces the same `frame_digest` and record bytes as
//!   the uninterrupted run (property-tested in `tests/proptest_recovery.rs`).
//!
//! ## On-disk format
//!
//! Both snapshots and WAL segments are sequences of frames:
//!
//! ```text
//! [u32 LE payload length][u32 LE CRC-32 of payload][payload bytes]
//! ```
//!
//! A snapshot is exactly one frame whose payload is the JSON
//! [`Snapshot`]; a WAL segment is zero or more frames whose payloads are
//! JSON [`WalRecord`]s. JSON through the vendored serde is canonical
//! (insertion-ordered maps, shortest round-trip float formatting), so
//! re-serializing a decoded snapshot reproduces its bytes exactly.
//!
//! ## Torn writes and corruption
//!
//! Only the **final** record of the **current** WAL segment may be torn
//! (a crash mid-append); it fails its length or CRC check and is
//! truncated. A CRC failure anywhere else — a rotated segment, or a
//! snapshot — is data corruption, not a torn write: a corrupt *current*
//! snapshot falls back to the previous generation (previous snapshot +
//! previous WAL + current WAL), while a corrupt rotated WAL segment or a
//! doubly-corrupt snapshot pair is unrecoverable and reported as a typed
//! error, never a panic.

use std::collections::BTreeMap;
use std::fmt;
use std::io::Write as _;
use std::path::PathBuf;

use serde::{Deserialize, Serialize};

use crate::aca::AcaOutput;
use crate::config::CocaConfig;
use crate::global::GlobalCacheTable;
use crate::proto::{CacheRequest, UpdateUpload};
use crate::status::ClientStatus;

/// Snapshot payload schema version (bumped on incompatible changes).
const SNAPSHOT_VERSION: u64 = 1;

/// Storage key of the current-generation snapshot.
pub const SNAP_CUR: &str = "snap.cur";
/// Storage key of the previous-generation snapshot.
pub const SNAP_PREV: &str = "snap.prev";
/// Storage key of the current WAL segment.
pub const WAL_CUR: &str = "wal.cur";
/// Storage key of the rotated (previous-generation) WAL segment.
pub const WAL_PREV: &str = "wal.prev";

// ---------------------------------------------------------------------------
// CRC-32 (IEEE 802.3 polynomial, reflected) — vendored shims carry no
// checksum crate, and 16 lines of table-driven CRC beat a dependency.
// ---------------------------------------------------------------------------

const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

// ---------------------------------------------------------------------------
// Frame codec
// ---------------------------------------------------------------------------

/// Frames `payload` as `[u32 len][u32 crc][payload]` (little-endian).
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Typed persistence/recovery errors. Corrupt or truncated bytes land
/// here — never in a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PersistError {
    /// Neither the current nor the previous snapshot passed its CRC and
    /// schema validation (and at least one generation existed, so this is
    /// not a fresh store).
    NoValidSnapshot,
    /// A rotated (closed) WAL segment failed a length or CRC check. Only
    /// the final record of the *current* segment may legally be torn.
    CorruptClosedSegment(String),
    /// A CRC-valid frame carried a payload that failed JSON or schema
    /// validation — data corruption inside a committed record.
    Decode(String),
    /// The snapshot was written under a different [`CocaConfig`] than the
    /// one the recovering server was constructed with.
    ConfigMismatch,
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::NoValidSnapshot => {
                write!(f, "no snapshot generation passed CRC + schema validation")
            }
            PersistError::CorruptClosedSegment(msg) => {
                write!(f, "corrupt record in a rotated WAL segment: {msg}")
            }
            PersistError::Decode(msg) => write!(f, "committed record failed to decode: {msg}"),
            PersistError::ConfigMismatch => {
                write!(f, "snapshot was written under a different CocaConfig")
            }
        }
    }
}

impl std::error::Error for PersistError {}

/// Decodes a frame sequence into payloads.
///
/// `lenient_tail` is the torn-write policy: when set (the *current* WAL
/// segment), an incomplete or CRC-failing **final** frame is truncated and
/// its byte count reported; frames before a valid successor must always
/// check out. When unset (snapshots, rotated segments), any invalid frame
/// is an error.
///
/// Returns `(payloads, committed_bytes, truncated_bytes)`.
pub fn decode_frames(
    bytes: &[u8],
    lenient_tail: bool,
) -> Result<(Vec<Vec<u8>>, usize, usize), PersistError> {
    let mut payloads = Vec::new();
    let mut pos = 0usize;
    while pos < bytes.len() {
        // A frame that fails any of the three checks below is the torn
        // tail in lenient mode (truncate and stop) and corruption in
        // strict mode. Lenient decoding cannot distinguish mid-file
        // corruption from a torn write without reading ahead, but a torn
        // record can only ever be last — which is why only the current
        // segment decodes leniently.
        let invalid = if bytes.len() - pos < 8 {
            Some(format!("short header at byte {pos}"))
        } else {
            let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes")) as usize;
            let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().expect("4 bytes"));
            if bytes.len() - pos - 8 < len {
                Some(format!("short payload at byte {pos}"))
            } else if crc32(&bytes[pos + 8..pos + 8 + len]) != crc {
                Some(format!("CRC mismatch at byte {pos}"))
            } else {
                payloads.push(bytes[pos + 8..pos + 8 + len].to_vec());
                pos += 8 + len;
                None
            }
        };
        if let Some(msg) = invalid {
            if lenient_tail {
                return Ok((payloads, pos, bytes.len() - pos));
            }
            return Err(PersistError::CorruptClosedSegment(msg));
        }
    }
    Ok((payloads, pos, 0))
}

// ---------------------------------------------------------------------------
// Storage backends
// ---------------------------------------------------------------------------

/// Key→bytes storage the durability layer writes through. Implementations
/// must make `append` cheap (it runs per server event). `Send + Sync` so
/// detached backends can sit in shared test fixtures.
pub trait Storage: Send + Sync {
    /// Full contents under `key`, or `None` when absent.
    fn load(&self, key: &str) -> Option<Vec<u8>>;
    /// Replaces the contents under `key`.
    fn save(&mut self, key: &str, bytes: &[u8]);
    /// Appends to the contents under `key` (creating it when absent).
    fn append(&mut self, key: &str, bytes: &[u8]);
    /// Removes `key` (no-op when absent).
    fn remove(&mut self, key: &str);
    /// Requests that every write reach stable media before returning
    /// (fsync-per-append). Provided as a no-op: only backends with a
    /// volatile write path ([`DirStorage`]) have anything to sync, and
    /// most callers — the daemon included — keep the **default off**:
    /// the recovery contract tested throughout this crate is about
    /// *process* crashes (the page cache survives those), and
    /// fsync-per-WAL-append would dominate every benchmark. Set env
    /// `COCA_FSYNC=1` (or call this) when surviving power loss matters
    /// more than append latency.
    fn set_fsync(&mut self, _enabled: bool) {}
}

/// In-memory storage: the test and fault-injection backend. Extra helpers
/// corrupt or truncate stored bytes deterministically.
#[derive(Debug, Default, Clone)]
pub struct MemStorage {
    map: BTreeMap<String, Vec<u8>>,
}

impl MemStorage {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// XORs `0xFF` into byte `index % len` under `key` (fault injection).
    /// No-op on an absent or empty key.
    pub fn corrupt_byte(&mut self, key: &str, index: usize) {
        if let Some(bytes) = self.map.get_mut(key) {
            if !bytes.is_empty() {
                let i = index % bytes.len();
                bytes[i] ^= 0xFF;
            }
        }
    }

    /// Truncates the contents under `key` to `len` bytes (torn-write
    /// injection). No-op on an absent key.
    pub fn truncate(&mut self, key: &str, len: usize) {
        if let Some(bytes) = self.map.get_mut(key) {
            bytes.truncate(len);
        }
    }

    /// Bytes stored under `key` (test inspection).
    pub fn get(&self, key: &str) -> Option<&[u8]> {
        self.map.get(key).map(Vec::as_slice)
    }
}

impl Storage for MemStorage {
    fn load(&self, key: &str) -> Option<Vec<u8>> {
        self.map.get(key).cloned()
    }

    fn save(&mut self, key: &str, bytes: &[u8]) {
        self.map.insert(key.to_string(), bytes.to_vec());
    }

    fn append(&mut self, key: &str, bytes: &[u8]) {
        self.map
            .entry(key.to_string())
            .or_default()
            .extend_from_slice(bytes);
    }

    fn remove(&mut self, key: &str) {
        self.map.remove(key);
    }
}

/// Directory-backed storage: one file per key. The deployment backend of
/// the daemon and the TCP example; appends reopen in append mode, so
/// per-event cost is one `write(2)`.
///
/// By default writes land in the page cache only — crash-safe against
/// *process* death (the kernel still flushes), not power loss, and fast
/// enough to WAL-log every daemon event. Env `COCA_FSYNC=1`/`true` (read
/// at [`DirStorage::open`]) or [`Storage::set_fsync`] upgrades every
/// save/append to `fdatasync` before returning.
#[derive(Debug)]
pub struct DirStorage {
    dir: PathBuf,
    fsync: bool,
}

impl DirStorage {
    /// Opens (creating if needed) `dir` as a durability directory. The
    /// fsync discipline defaults from env `COCA_FSYNC` (off when unset).
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let fsync = std::env::var("COCA_FSYNC")
            .map(|v| v == "1" || v.eq_ignore_ascii_case("true"))
            .unwrap_or(false);
        Ok(Self { dir, fsync })
    }

    /// Whether save/append sync to stable media before returning.
    pub fn fsync(&self) -> bool {
        self.fsync
    }

    fn path(&self, key: &str) -> PathBuf {
        self.dir.join(key)
    }
}

impl Storage for DirStorage {
    fn load(&self, key: &str) -> Option<Vec<u8>> {
        std::fs::read(self.path(key)).ok()
    }

    fn save(&mut self, key: &str, bytes: &[u8]) {
        if self.fsync {
            let mut f = std::fs::OpenOptions::new()
                .create(true)
                .write(true)
                .truncate(true)
                .open(self.path(key))
                .expect("durability dir must stay writable");
            f.write_all(bytes)
                .and_then(|()| f.sync_data())
                .expect("durability dir must stay writable");
        } else {
            std::fs::write(self.path(key), bytes).expect("durability dir must stay writable");
        }
    }

    fn append(&mut self, key: &str, bytes: &[u8]) {
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.path(key))
            .expect("durability dir must stay writable");
        f.write_all(bytes)
            .expect("durability dir must stay writable");
        if self.fsync {
            f.sync_data().expect("durability dir must stay writable");
        }
    }

    fn remove(&mut self, key: &str) {
        let _ = std::fs::remove_file(self.path(key));
    }

    fn set_fsync(&mut self, enabled: bool) {
        self.fsync = enabled;
    }
}

// ---------------------------------------------------------------------------
// Snapshot
// ---------------------------------------------------------------------------

/// Full mutable server state at one event boundary: everything replay
/// needs that [`crate::server::CocaServer::new`] does not reconstruct from
/// `(rt, cfg, seeds)`.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// The configuration the snapshot was written under — recovery under
    /// a different config is refused ([`PersistError::ConfigMismatch`]).
    pub config: CocaConfig,
    /// The global cache table (all `LayerSlot` precisions) + Φ.
    pub global: GlobalCacheTable,
    /// Server-side mirror of the last τ/φ each client reported, sorted by
    /// client id.
    pub clients: Vec<(u64, ClientStatus)>,
    /// The queue-and-flush pending queue, FIFO order.
    pub pending: Vec<UpdateUpload>,
    /// Round-aligned flush watermark.
    pub flush_watermark: usize,
    /// The lazily computed static allocation (DCA-off runs), if any.
    pub static_alloc: Option<AcaOutput>,
}

impl Serialize for Snapshot {
    fn to_value(&self) -> serde::Value {
        let mut m = serde::Map::new();
        m.insert("version".into(), Serialize::to_value(&SNAPSHOT_VERSION));
        m.insert("config".into(), Serialize::to_value(&self.config));
        m.insert("global".into(), Serialize::to_value(&self.global));
        m.insert("clients".into(), Serialize::to_value(&self.clients));
        m.insert("pending".into(), Serialize::to_value(&self.pending));
        m.insert(
            "flush_watermark".into(),
            Serialize::to_value(&self.flush_watermark),
        );
        m.insert(
            "static_alloc".into(),
            Serialize::to_value(&self.static_alloc),
        );
        serde::Value::Object(m)
    }
}

impl Deserialize for Snapshot {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let serde::Value::Object(m) = v else {
            return Err(serde::Error::custom(format!(
                "expected object for Snapshot, got {}",
                v.kind()
            )));
        };
        let version: u64 = serde::__field(m, "version")?;
        if version != SNAPSHOT_VERSION {
            return Err(serde::Error::custom(format!(
                "Snapshot: unsupported version {version} (expected {SNAPSHOT_VERSION})"
            )));
        }
        let config: CocaConfig = serde::__field(m, "config")?;
        let global: GlobalCacheTable = serde::__field(m, "global")?;
        let clients: Vec<(u64, ClientStatus)> = serde::__field(m, "clients")?;
        let pending: Vec<UpdateUpload> = serde::__field(m, "pending")?;
        let flush_watermark: usize = serde::__field(m, "flush_watermark")?;
        let static_alloc: Option<AcaOutput> = serde::__field(m, "static_alloc")?;

        let classes = global.num_classes();
        let layers = global.num_layers();
        // Client registry: strictly id-sorted (the canonical byte form),
        // every status shaped like the table it mirrors.
        for w in clients.windows(2) {
            if w[0].0 >= w[1].0 {
                return Err(serde::Error::custom(format!(
                    "Snapshot: client registry not strictly id-sorted at {}",
                    w[1].0
                )));
            }
        }
        for (id, st) in &clients {
            if st.timestamps().len() != classes || st.frequency().len() != classes {
                return Err(serde::Error::custom(format!(
                    "Snapshot: client {id} status tracks {}/{} classes in a {classes}-class table",
                    st.timestamps().len(),
                    st.frequency().len()
                )));
            }
        }
        // Pending uploads must be mergeable into this table: φ length,
        // layer indices and per-layer entry dimensions all have to line
        // up (the "layer dims" half of the snapshot hardening).
        for (i, up) in pending.iter().enumerate() {
            if up.frequency.len() != classes {
                return Err(serde::Error::custom(format!(
                    "Snapshot: pending upload {i} carries {} φ entries for {classes} classes",
                    up.frequency.len()
                )));
            }
            for g in up.table.layer_groups() {
                let layer = g.layer as usize;
                if layer >= layers {
                    return Err(serde::Error::custom(format!(
                        "Snapshot: pending upload {i} touches layer {layer} of a {layers}-layer table"
                    )));
                }
                if let Some(d) = global.layer_dim(layer) {
                    if g.vectors.dim() != d {
                        return Err(serde::Error::custom(format!(
                            "Snapshot: pending upload {i} layer {layer} dim {} vs table dim {d}",
                            g.vectors.dim()
                        )));
                    }
                }
                if let Some(&c) = g.classes.iter().find(|&&c| c as usize >= classes) {
                    return Err(serde::Error::custom(format!(
                        "Snapshot: pending upload {i} layer {layer} touches class {c} of {classes}"
                    )));
                }
            }
        }
        if let Some(alloc) = &static_alloc {
            if alloc.hot_classes.iter().any(|&c| c >= classes)
                || alloc.layers.iter().any(|&j| j >= layers)
            {
                return Err(serde::Error::custom(
                    "Snapshot: static allocation indexes outside the table".to_string(),
                ));
            }
        }
        Ok(Self {
            config,
            global,
            clients,
            pending,
            flush_watermark,
            static_alloc,
        })
    }
}

impl Snapshot {
    /// Serializes to the single-frame byte form stored under a snapshot
    /// key.
    pub fn to_bytes(&self) -> Vec<u8> {
        let json = serde_json::to_string(self).expect("snapshots always serialize");
        encode_frame(json.as_bytes())
    }

    /// Parses the single-frame byte form, validating frame CRC, JSON and
    /// schema. Exactly one frame must be present.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, PersistError> {
        let (payloads, _, _) = decode_frames(bytes, false)?;
        let [payload] = payloads.as_slice() else {
            return Err(PersistError::Decode(format!(
                "snapshot must be exactly one frame, got {}",
                payloads.len()
            )));
        };
        let text = std::str::from_utf8(payload)
            .map_err(|e| PersistError::Decode(format!("snapshot is not UTF-8: {e}")))?;
        serde_json::from_str(text).map_err(|e| PersistError::Decode(e.to_string()))
    }
}

// ---------------------------------------------------------------------------
// WAL records
// ---------------------------------------------------------------------------

/// One logged server event. Each variant carries exactly the input of the
/// public handler it mirrors, so replay drives the same code path — same
/// fused kernels, bit-identical state.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum WalRecord {
    /// `handle_request`: flush boundary (policy-dependent), lazy static
    /// allocation, τ registry update.
    Request(CacheRequest),
    /// `handle_update`: the immediate per-upload merge primitive.
    Merge(UpdateUpload),
    /// `handle_upload`: the mode-dispatched upload entry point.
    Upload(UpdateUpload),
    /// `handle_updates_batch`, already canonicalized (sorted, dup-free).
    Batch(Vec<UpdateUpload>),
    /// `on_client_leave`: flush + Φ decay.
    Leave,
    /// An explicit `flush_pending` call (the run-end boundary).
    Flush,
    /// `set_flush_watermark`.
    Watermark(usize),
}

impl WalRecord {
    /// Serializes to the framed byte form appended to a WAL segment.
    pub fn to_frame(&self) -> Vec<u8> {
        let json = serde_json::to_string(self).expect("WAL records always serialize");
        encode_frame(json.as_bytes())
    }

    fn from_payload(payload: &[u8]) -> Result<Self, PersistError> {
        let text = std::str::from_utf8(payload)
            .map_err(|e| PersistError::Decode(format!("WAL record is not UTF-8: {e}")))?;
        serde_json::from_str(text).map_err(|e| PersistError::Decode(e.to_string()))
    }
}

// ---------------------------------------------------------------------------
// Crash-point injection
// ---------------------------------------------------------------------------

/// What the injected crash does to storage at the chosen event boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashFault {
    /// The process dies between events: the WAL ends cleanly after the
    /// previous record.
    Clean,
    /// The process dies mid-append: the first `keep % frame_len` bytes of
    /// the interrupted record reach storage (always a strict prefix, so
    /// the length/CRC check rejects it).
    Torn {
        /// Pre-modulo count of frame bytes that reach storage.
        keep: usize,
    },
    /// The crash (or the medium) additionally flips one byte of the
    /// *current* snapshot, forcing recovery onto the previous generation.
    SnapCorrupt {
        /// Pre-modulo index of the flipped byte.
        byte: usize,
    },
}

/// A deterministic crash plan: die at the boundary of server event
/// `at_event` (0-based WAL append index) with the given fault. The event
/// itself has not mutated state yet — recovery replays events
/// `0..at_event`, after which the interrupted event is redelivered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashPlan {
    /// 0-based index of the WAL append the crash interrupts.
    pub at_event: u64,
    /// Storage damage done at the crash point.
    pub fault: CrashFault,
}

impl CrashPlan {
    /// Reads `COCA_CRASH_AT` (event index) + `COCA_CRASH_FAULT`
    /// (`clean` / `torn:<keep>` / `snap:<byte>`; default `clean`) — the
    /// env-driven injection path for whole-binary crash experiments.
    /// Unset or unparsable `COCA_CRASH_AT` means no plan.
    pub fn from_env() -> Option<Self> {
        let at_event: u64 = std::env::var("COCA_CRASH_AT").ok()?.parse().ok()?;
        let fault = match std::env::var("COCA_CRASH_FAULT").ok().as_deref() {
            Some(spec) if spec.starts_with("torn:") => CrashFault::Torn {
                keep: spec["torn:".len()..].parse().unwrap_or(0),
            },
            Some(spec) if spec.starts_with("snap:") => CrashFault::SnapCorrupt {
                byte: spec["snap:".len()..].parse().unwrap_or(0),
            },
            _ => CrashFault::Clean,
        };
        Some(Self { at_event, fault })
    }
}

/// Where recovery found its snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotSource {
    /// The current-generation snapshot was valid.
    Current,
    /// The current snapshot was corrupt or absent; the previous
    /// generation (snapshot + rotated WAL) was replayed first.
    Previous,
    /// No snapshot was ever written: replay starts from the freshly
    /// constructed (genesis) server state.
    Genesis,
}

/// What a recovery did — surfaced for tests, experiments and operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryInfo {
    /// Which snapshot generation seeded the replay.
    pub source: SnapshotSource,
    /// WAL records replayed on top of the snapshot.
    pub replayed: usize,
    /// Bytes of torn final record truncated from the current segment.
    pub truncated_bytes: usize,
}

// ---------------------------------------------------------------------------
// Durability: the rotation + recovery state machine
// ---------------------------------------------------------------------------

/// Owns a [`Storage`] backend and runs the snapshot/WAL state machine for
/// one server: append, rotate, checkpoint, crash-fire, load-for-recovery.
/// Attached to a server via
/// [`CocaServer::attach_durability`](crate::server::CocaServer::attach_durability).
pub struct Durability {
    store: Box<dyn Storage>,
    /// WAL records per generation before a rotation snapshots the state.
    rotate_every: usize,
    /// Records appended to the current segment since the last rotation or
    /// checkpoint.
    records_in_cur: usize,
    /// Total records appended over the attachment's lifetime — the crash
    /// plan's event-index space.
    events: u64,
    crash: Option<CrashPlan>,
}

impl fmt::Debug for Durability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Durability")
            .field("rotate_every", &self.rotate_every)
            .field("records_in_cur", &self.records_in_cur)
            .field("events", &self.events)
            .field("crash", &self.crash)
            .finish_non_exhaustive()
    }
}

impl Durability {
    /// Wraps `store`, rotating the WAL into a snapshot every
    /// `rotate_every` records (clamped to ≥ 1).
    pub fn new(store: Box<dyn Storage>, rotate_every: usize) -> Self {
        Self {
            store,
            rotate_every: rotate_every.max(1),
            records_in_cur: 0,
            events: 0,
            crash: None,
        }
    }

    /// Installs a crash plan (builder form).
    pub fn with_crash_plan(mut self, plan: CrashPlan) -> Self {
        self.crash = Some(plan);
        self
    }

    /// Total WAL records appended so far — the crash plan's event space.
    pub fn events_logged(&self) -> u64 {
        self.events
    }

    /// True while an installed crash plan has not fired yet (tests assert
    /// their injected crash actually happened).
    pub fn crash_pending(&self) -> bool {
        self.crash.is_some()
    }

    /// The backend (test inspection).
    pub fn storage(&self) -> &dyn Storage {
        self.store.as_ref()
    }

    /// Mutable backend access (test fault injection).
    pub fn storage_mut(&mut self) -> &mut dyn Storage {
        self.store.as_mut()
    }

    /// Unwraps the backend.
    pub fn into_storage(self) -> Box<dyn Storage> {
        self.store
    }

    /// Writes the genesis snapshot on first attachment: both generations
    /// start as the attach-time state, so even a corrupt *first* current
    /// snapshot has a previous generation to fall back to. No-op when a
    /// current snapshot already exists (re-attachment after recovery).
    pub fn ensure_genesis(&mut self, snapshot_frame: &[u8]) {
        if self.store.load(SNAP_CUR).is_none() {
            self.store.save(SNAP_CUR, snapshot_frame);
            self.store.save(SNAP_PREV, snapshot_frame);
            self.store.save(WAL_CUR, &[]);
        }
    }

    /// True when the installed crash plan fires at the *next* append.
    pub fn crash_due(&self) -> bool {
        self.crash.is_some_and(|p| p.at_event == self.events)
    }

    /// Applies the due crash's storage damage (consuming the plan):
    /// tears a prefix of `frame` into the current segment and/or corrupts
    /// the current snapshot. The interrupted event's mutation has not
    /// happened yet — the caller recovers and then redelivers it.
    pub fn fire_crash(&mut self, frame: &[u8]) {
        let plan = self.crash.take().expect("fire_crash requires a due plan");
        match plan.fault {
            CrashFault::Clean => {}
            CrashFault::Torn { keep } => {
                // Any strict prefix fails the length or CRC check; an
                // empty prefix degenerates to a clean crash.
                let kept = keep % frame.len();
                self.store.append(WAL_CUR, &frame[..kept]);
            }
            CrashFault::SnapCorrupt { byte } => {
                if let Some(mut snap) = self.store.load(SNAP_CUR) {
                    if !snap.is_empty() {
                        let i = byte % snap.len();
                        snap[i] ^= 0xFF;
                        self.store.save(SNAP_CUR, &snap);
                    }
                }
            }
        }
    }

    /// True when the current segment is full and the next append must be
    /// preceded by a rotation.
    pub fn needs_rotation(&self) -> bool {
        self.records_in_cur >= self.rotate_every
    }

    /// Rotates generations: the current snapshot+WAL become the previous
    /// generation and `snapshot_frame` (the state *before* the next
    /// record's mutation) opens a fresh one.
    pub fn rotate(&mut self, snapshot_frame: &[u8]) {
        let old_snap = self.store.load(SNAP_CUR);
        let old_wal = self.store.load(WAL_CUR).unwrap_or_default();
        match old_snap {
            Some(s) => self.store.save(SNAP_PREV, &s),
            None => self.store.remove(SNAP_PREV),
        }
        self.store.save(WAL_PREV, &old_wal);
        self.store.save(WAL_CUR, &[]);
        self.store.save(SNAP_CUR, snapshot_frame);
        self.records_in_cur = 0;
    }

    /// Collapses both generations onto `snapshot_frame` and empties both
    /// WAL segments — the post-recovery fold (replayed records are inside
    /// the new snapshot) and the explicit-checkpoint operation.
    pub fn checkpoint(&mut self, snapshot_frame: &[u8]) {
        self.store.save(SNAP_CUR, snapshot_frame);
        self.store.save(SNAP_PREV, snapshot_frame);
        self.store.save(WAL_CUR, &[]);
        self.store.remove(WAL_PREV);
        self.records_in_cur = 0;
    }

    /// Appends one framed record to the current segment.
    pub fn append_frame(&mut self, frame: &[u8]) {
        self.store.append(WAL_CUR, frame);
        self.records_in_cur += 1;
        self.events += 1;
    }

    /// Loads the newest valid snapshot generation and the WAL records to
    /// replay on top of it, truncating a torn final record. `None`
    /// snapshot means genesis: no snapshot was ever written and replay
    /// starts from freshly constructed server state.
    pub fn load_for_recovery(
        &mut self,
    ) -> Result<(Option<Snapshot>, Vec<WalRecord>, RecoveryInfo), PersistError> {
        let cur_snap = self.store.load(SNAP_CUR);
        let prev_snap = self.store.load(SNAP_PREV);
        let wal_cur = self.store.load(WAL_CUR).unwrap_or_default();
        let wal_prev = self.store.load(WAL_PREV).unwrap_or_default();

        // The current segment is the only one that may end in a torn
        // record; rotated segments were closed cleanly.
        let (tail_payloads, _, truncated_bytes) = decode_frames(&wal_cur, true)?;

        if let Some(snap) = cur_snap
            .as_deref()
            .and_then(|b| Snapshot::from_bytes(b).ok())
        {
            let records = decode_wal_payloads(tail_payloads)?;
            let replayed = records.len();
            return Ok((
                Some(snap),
                records,
                RecoveryInfo {
                    source: SnapshotSource::Current,
                    replayed,
                    truncated_bytes,
                },
            ));
        }
        if let Some(snap) = prev_snap
            .as_deref()
            .and_then(|b| Snapshot::from_bytes(b).ok())
        {
            let (prev_payloads, _, _) = decode_frames(&wal_prev, false)?;
            let mut records = decode_wal_payloads(prev_payloads)?;
            records.extend(decode_wal_payloads(tail_payloads)?);
            let replayed = records.len();
            return Ok((
                Some(snap),
                records,
                RecoveryInfo {
                    source: SnapshotSource::Previous,
                    replayed,
                    truncated_bytes,
                },
            ));
        }
        if cur_snap.is_some() || prev_snap.is_some() {
            // A snapshot existed but neither generation validates.
            return Err(PersistError::NoValidSnapshot);
        }
        // Fresh store: genesis + whatever WAL exists (a store that never
        // rotated never wrote wal.prev either).
        let (prev_payloads, _, _) = decode_frames(&wal_prev, false)?;
        let mut records = decode_wal_payloads(prev_payloads)?;
        records.extend(decode_wal_payloads(tail_payloads)?);
        let replayed = records.len();
        Ok((
            None,
            records,
            RecoveryInfo {
                source: SnapshotSource::Genesis,
                replayed,
                truncated_bytes,
            },
        ))
    }
}

fn decode_wal_payloads(payloads: Vec<Vec<u8>>) -> Result<Vec<WalRecord>, PersistError> {
    payloads
        .iter()
        .map(|p| WalRecord::from_payload(p))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC-32 check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn frames_round_trip_and_reject_any_strict_prefix() {
        let payloads: Vec<&[u8]> = vec![b"alpha", b"", b"{\"k\":1}"];
        let mut bytes = Vec::new();
        for p in &payloads {
            bytes.extend_from_slice(&encode_frame(p));
        }
        let (decoded, committed, truncated) = decode_frames(&bytes, false).unwrap();
        assert_eq!(
            decoded.iter().map(Vec::as_slice).collect::<Vec<_>>(),
            payloads
        );
        assert_eq!(committed, bytes.len());
        assert_eq!(truncated, 0);

        // Every strict prefix leniently truncates to a whole-frame
        // boundary, and never truncates a complete record.
        let frame_ends: Vec<usize> = payloads
            .iter()
            .scan(0usize, |acc, p| {
                *acc += 8 + p.len();
                Some(*acc)
            })
            .collect();
        for cut in 0..bytes.len() {
            let (decoded, committed, truncated) = decode_frames(&bytes[..cut], true).unwrap();
            let whole = frame_ends.iter().filter(|&&e| e <= cut).count();
            assert_eq!(decoded.len(), whole, "cut at {cut}");
            assert_eq!(committed + truncated, cut);
            // Strict mode refuses the same prefix unless it is
            // frame-aligned.
            let strict = decode_frames(&bytes[..cut], false);
            if frame_ends.contains(&cut) || cut == 0 {
                assert!(strict.is_ok());
            } else {
                assert!(matches!(strict, Err(PersistError::CorruptClosedSegment(_))));
            }
        }
    }

    #[test]
    fn corrupt_payload_byte_fails_crc() {
        let mut bytes = encode_frame(b"payload-bytes");
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        assert!(matches!(
            decode_frames(&bytes, false),
            Err(PersistError::CorruptClosedSegment(_))
        ));
        let (decoded, _, truncated) = decode_frames(&bytes, true).unwrap();
        assert!(decoded.is_empty());
        assert_eq!(truncated, bytes.len());
    }

    #[test]
    fn mem_storage_append_and_fault_helpers() {
        let mut s = MemStorage::new();
        s.append("k", b"ab");
        s.append("k", b"cd");
        assert_eq!(s.load("k").as_deref(), Some(&b"abcd"[..]));
        s.corrupt_byte("k", 5); // 5 % 4 == 1
        assert_eq!(
            s.load("k").as_deref(),
            Some(&[b'a', b'b' ^ 0xFF, b'c', b'd'][..])
        );
        s.truncate("k", 1);
        assert_eq!(s.load("k").as_deref(), Some(&b"a"[..]));
        s.remove("k");
        assert!(s.load("k").is_none());
    }

    #[test]
    fn dir_storage_round_trips_through_files() {
        let dir = std::env::temp_dir().join(format!(
            "coca-persist-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let mut s = DirStorage::open(&dir).unwrap();
        assert!(s.load(WAL_CUR).is_none());
        s.save(SNAP_CUR, b"snapshot");
        s.append(WAL_CUR, b"rec1");
        s.append(WAL_CUR, b"rec2");
        assert_eq!(s.load(SNAP_CUR).as_deref(), Some(&b"snapshot"[..]));
        assert_eq!(s.load(WAL_CUR).as_deref(), Some(&b"rec1rec2"[..]));
        s.remove(SNAP_CUR);
        assert!(s.load(SNAP_CUR).is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn dir_storage_fsync_toggle_keeps_bytes_identical() {
        // COCA_FSYNC changes the durability discipline, never the bytes.
        let dir = std::env::temp_dir().join(format!(
            "coca-persist-fsync-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let mut s = DirStorage::open(&dir).unwrap();
        // Defaults off unless the env says otherwise (the benchmark mode).
        if std::env::var("COCA_FSYNC").is_err() {
            assert!(!s.fsync());
        }
        s.set_fsync(true);
        assert!(s.fsync());
        s.save(SNAP_CUR, b"snapshot");
        s.append(WAL_CUR, b"rec1");
        s.append(WAL_CUR, b"rec2");
        assert_eq!(s.load(SNAP_CUR).as_deref(), Some(&b"snapshot"[..]));
        assert_eq!(s.load(WAL_CUR).as_deref(), Some(&b"rec1rec2"[..]));
        // Synced saves truncate like unsynced ones (no stale tail).
        s.save(SNAP_CUR, b"v2");
        assert_eq!(s.load(SNAP_CUR).as_deref(), Some(&b"v2"[..]));
        // MemStorage takes the provided no-op.
        MemStorage::new().set_fsync(true);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wal_record_frames_round_trip() {
        let rec = WalRecord::Watermark(7);
        let frame = rec.to_frame();
        let (payloads, _, _) = decode_frames(&frame, false).unwrap();
        let back = WalRecord::from_payload(&payloads[0]).unwrap();
        assert!(matches!(back, WalRecord::Watermark(7)));

        let leave = WalRecord::Leave.to_frame();
        let (payloads, _, _) = decode_frames(&leave, false).unwrap();
        assert!(matches!(
            WalRecord::from_payload(&payloads[0]).unwrap(),
            WalRecord::Leave
        ));
    }

    #[test]
    fn crash_plan_env_parsing() {
        // from_env reads process-global state; exercise the parser by
        // setting and clearing within one test (tier-1 runs tests in one
        // process, so restore what we found).
        std::env::set_var("COCA_CRASH_AT", "12");
        std::env::set_var("COCA_CRASH_FAULT", "torn:5");
        assert_eq!(
            CrashPlan::from_env(),
            Some(CrashPlan {
                at_event: 12,
                fault: CrashFault::Torn { keep: 5 }
            })
        );
        std::env::set_var("COCA_CRASH_FAULT", "snap:33");
        assert_eq!(
            CrashPlan::from_env().unwrap().fault,
            CrashFault::SnapCorrupt { byte: 33 }
        );
        std::env::set_var("COCA_CRASH_FAULT", "clean");
        assert_eq!(CrashPlan::from_env().unwrap().fault, CrashFault::Clean);
        std::env::remove_var("COCA_CRASH_AT");
        std::env::remove_var("COCA_CRASH_FAULT");
        assert_eq!(CrashPlan::from_env(), None);
    }

    #[test]
    fn rotation_moves_generations_and_checkpoint_collapses_them() {
        let mut d = Durability::new(Box::new(MemStorage::new()), 2);
        d.ensure_genesis(b"S0");
        d.append_frame(b"r0");
        d.append_frame(b"r1");
        assert!(d.needs_rotation());
        d.rotate(b"S1");
        assert!(!d.needs_rotation());
        let get = |d: &Durability, k: &str| d.storage().load(k);
        assert_eq!(get(&d, SNAP_CUR).as_deref(), Some(&b"S1"[..]));
        assert_eq!(get(&d, SNAP_PREV).as_deref(), Some(&b"S0"[..]));
        assert_eq!(get(&d, WAL_PREV).as_deref(), Some(&b"r0r1"[..]));
        assert_eq!(get(&d, WAL_CUR).as_deref(), Some(&b""[..]));
        d.append_frame(b"r2");
        assert_eq!(d.events_logged(), 3);
        d.checkpoint(b"S2");
        assert_eq!(get(&d, SNAP_CUR).as_deref(), Some(&b"S2"[..]));
        assert_eq!(get(&d, SNAP_PREV).as_deref(), Some(&b"S2"[..]));
        assert_eq!(get(&d, WAL_CUR).as_deref(), Some(&b""[..]));
        assert!(get(&d, WAL_PREV).is_none());
        // The event counter survives checkpoints (crash indices are
        // lifetime-global).
        assert_eq!(d.events_logged(), 3);
    }
}
