//! The server's two-dimensional global cache table (§IV.D).
//!
//! Rows are classes, columns are the model's preset cache layers. Each
//! populated cell is a unit-norm semantic center. Per-client uploads merge
//! in by frequency-weighted averaging (Eq. 4):
//!
//! ```text
//! E_{i,j} ← γ · Φ_i/(Φ_i + φ_i) · E_{i,j} + φ_i/(Φ_i + φ_i) · U_{i,j}
//! ```
//!
//! followed by re-normalization, and the global class frequency advances by
//! Eq. 5: `Φ_i ← Φ_i + φ_i`.

use coca_math::vector::{axpy, l2_normalize, scale};
use serde::{Deserialize, Serialize};

use crate::collect::UpdateTable;
use crate::semantic::{CacheLayer, LocalCache};

/// The global cache table plus the global class-frequency vector Φ.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GlobalCacheTable {
    classes: usize,
    layers: usize,
    /// Row-major `[class][layer]`; `None` = never populated.
    entries: Vec<Option<Vec<f32>>>,
    /// Φ — global class frequencies (Eq. 5).
    frequency: Vec<u64>,
}

impl GlobalCacheTable {
    /// An empty `classes × layers` table.
    pub fn new(classes: usize, layers: usize) -> Self {
        assert!(classes > 0 && layers > 0, "degenerate global cache shape");
        Self {
            classes,
            layers,
            entries: vec![None; classes * layers],
            frequency: vec![0; classes],
        }
    }

    /// Number of class rows.
    pub fn num_classes(&self) -> usize {
        self.classes
    }

    /// Number of layer columns.
    pub fn num_layers(&self) -> usize {
        self.layers
    }

    #[inline]
    fn idx(&self, class: usize, layer: usize) -> usize {
        debug_assert!(class < self.classes && layer < self.layers);
        class * self.layers + layer
    }

    /// The entry at `(class, layer)`, if populated.
    pub fn get(&self, class: usize, layer: usize) -> Option<&[f32]> {
        self.entries[self.idx(class, layer)].as_deref()
    }

    /// Directly sets an entry (initial seeding from the shared dataset).
    /// The vector is normalized on insertion.
    pub fn set(&mut self, class: usize, layer: usize, mut vector: Vec<f32>) {
        l2_normalize(&mut vector);
        let i = self.idx(class, layer);
        self.entries[i] = Some(vector);
    }

    /// Φ — the global class-frequency vector.
    pub fn frequency(&self) -> &[u64] {
        &self.frequency
    }

    /// Seeds Φ with prior counts (server-side shared-dataset profiling),
    /// so the very first ACA call has non-degenerate scores.
    pub fn seed_frequency(&mut self, counts: &[u64]) {
        assert_eq!(counts.len(), self.classes, "frequency length mismatch");
        self.frequency.copy_from_slice(counts);
    }

    /// Merges one client's upload: Eq. 4 for every populated cell of `u`,
    /// then Eq. 5 for Φ. `phi` is the client's per-round class frequency
    /// vector φ; `gamma` is the global decay (paper: 0.99).
    ///
    /// Cells never seen before adopt the client's vector directly (the
    /// Eq. 4 weights with Φ_i = 0 reduce to exactly that only when the
    /// entry exists; a missing entry has nothing to decay).
    pub fn merge_update(&mut self, u: &UpdateTable, phi: &[u32], gamma: f32) {
        assert_eq!(phi.len(), self.classes, "phi length mismatch");
        for (class, layer, vector) in u.iter() {
            if class >= self.classes || layer >= self.layers {
                // Malformed upload cell; ignore rather than poison state.
                continue;
            }
            let phi_i = phi[class] as f32;
            if phi_i <= 0.0 {
                // The paper weights by local frequency; a class the client
                // claims it never saw contributes nothing.
                continue;
            }
            let cap_phi = self.frequency[class] as f32;
            let i = self.idx(class, layer);
            match &mut self.entries[i] {
                Some(e) => {
                    debug_assert_eq!(e.len(), vector.len(), "dim mismatch in global merge");
                    let w_old = gamma * cap_phi / (cap_phi + phi_i);
                    let w_new = phi_i / (cap_phi + phi_i);
                    scale(w_old, e);
                    axpy(w_new, vector, e);
                    l2_normalize(e);
                }
                None => {
                    let mut v = vector.to_vec();
                    l2_normalize(&mut v);
                    self.entries[i] = Some(v);
                }
            }
        }
        // Eq. 5.
        for (f, &p) in self.frequency.iter_mut().zip(phi) {
            *f += p as u64;
        }
    }

    /// Extracts a local cache: the given `layers`, each filled with the
    /// entries of `classes` (cells never populated are skipped — a client
    /// cannot match against a center that does not exist yet).
    pub fn extract(&self, layers: &[usize], classes: &[usize]) -> LocalCache {
        let mut out = Vec::with_capacity(layers.len());
        for &layer in layers {
            let mut cl = CacheLayer::new(layer);
            for &class in classes {
                if let Some(v) = self.get(class, layer) {
                    cl.insert(class, v.to_vec());
                }
            }
            if !cl.is_empty() {
                out.push(cl);
            }
        }
        LocalCache::from_layers(out)
    }

    /// Fraction of cells populated (diagnostics).
    pub fn fill_ratio(&self) -> f64 {
        let filled = self.entries.iter().filter(|e| e.is_some()).count();
        filled as f64 / self.entries.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coca_math::{cosine, l2_norm};

    fn table() -> GlobalCacheTable {
        GlobalCacheTable::new(4, 3)
    }

    fn upload(cells: &[(usize, usize, Vec<f32>)]) -> UpdateTable {
        let mut u = UpdateTable::new();
        for (c, l, v) in cells {
            u.absorb(*c, *l, v, 0.0);
        }
        u
    }

    #[test]
    fn merge_into_empty_adopts_client_vector() {
        let mut t = table();
        let u = upload(&[(1, 2, vec![0.0, 3.0])]);
        t.merge_update(&u, &[0, 5, 0, 0], 0.99);
        let e = t.get(1, 2).unwrap();
        assert!(cosine(e, &[0.0, 1.0]) > 0.999);
        assert_eq!(t.frequency(), &[0, 5, 0, 0]);
        assert!(t.get(0, 0).is_none());
    }

    #[test]
    fn merge_weights_by_frequency() {
        let mut t = table();
        t.set(0, 0, vec![1.0, 0.0]);
        t.seed_frequency(&[90, 0, 0, 0]);
        // A client with small φ barely moves the entry...
        let u = upload(&[(0, 0, vec![0.0, 1.0])]);
        t.merge_update(&u, &[10, 0, 0, 0], 0.99);
        let e = t.get(0, 0).unwrap().to_vec();
        assert!(cosine(&e, &[1.0, 0.0]) > 0.9, "entry {e:?}");
        assert_eq!(t.frequency()[0], 100);
        // ...but a dominant client swings it.
        let u = upload(&[(0, 0, vec![0.0, 1.0])]);
        t.merge_update(&u, &[900, 0, 0, 0], 0.99);
        let e = t.get(0, 0).unwrap().to_vec();
        assert!(cosine(&e, &[0.0, 1.0]) > 0.9, "entry {e:?}");
    }

    #[test]
    fn merged_entries_stay_unit_norm() {
        let mut t = table();
        t.set(2, 1, vec![1.0, 1.0]);
        t.seed_frequency(&[0, 0, 7, 0]);
        let u = upload(&[(2, 1, vec![-1.0, 1.0])]);
        t.merge_update(&u, &[0, 0, 3, 0], 0.99);
        assert!((l2_norm(t.get(2, 1).unwrap()) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn zero_phi_classes_do_not_merge() {
        let mut t = table();
        t.set(3, 0, vec![1.0, 0.0]);
        let u = upload(&[(3, 0, vec![0.0, 1.0])]);
        t.merge_update(&u, &[0, 0, 0, 0], 0.99);
        assert!(cosine(t.get(3, 0).unwrap(), &[1.0, 0.0]) > 0.999);
    }

    #[test]
    fn out_of_range_cells_are_ignored() {
        let mut t = table();
        let mut u = UpdateTable::new();
        u.absorb(99, 99, &[1.0, 0.0], 0.0);
        t.merge_update(&u, &[1, 0, 0, 0], 0.99); // must not panic
        assert_eq!(t.frequency()[0], 1);
    }

    #[test]
    fn extract_skips_unpopulated_cells() {
        let mut t = table();
        t.set(0, 1, vec![1.0, 0.0]);
        t.set(2, 1, vec![0.0, 1.0]);
        t.set(0, 2, vec![1.0, 1.0]);
        let cache = t.extract(&[1, 2], &[0, 2]);
        assert_eq!(cache.num_layers(), 2);
        assert_eq!(cache.layers()[0].len(), 2); // classes 0 and 2 at layer 1
        assert_eq!(cache.layers()[1].len(), 1); // only class 0 at layer 2
                                                // Requesting an entirely empty layer yields no activated layer.
        let cache = t.extract(&[0], &[0, 1, 2, 3]);
        assert_eq!(cache.num_layers(), 0);
    }

    #[test]
    fn fill_ratio_counts_cells() {
        let mut t = table();
        assert_eq!(t.fill_ratio(), 0.0);
        t.set(0, 0, vec![1.0, 0.0]);
        assert!((t.fill_ratio() - 1.0 / 12.0).abs() < 1e-12);
    }
}
