//! The server's two-dimensional global cache table (§IV.D).
//!
//! Rows are classes, columns are the model's preset cache layers. Each
//! populated cell is a unit-norm semantic center. Per-client uploads merge
//! in by frequency-weighted averaging (Eq. 4):
//!
//! ```text
//! E_{i,j} ← γ · Φ_i/(Φ_i + φ_i) · E_{i,j} + φ_i/(Φ_i + φ_i) · U_{i,j}
//! ```
//!
//! followed by re-normalization, and the global class frequency advances by
//! Eq. 5: `Φ_i ← Φ_i + φ_i`.
//!
//! ## Columnar layout
//!
//! Each layer keeps one **dense contiguous** [`VectorStore`] with exactly
//! `classes` rows (zero-filled until populated) plus a layer-major
//! [`OccupancyBitmap`] marking which cells actually hold a center —
//! replacing the seed's `Vec<Option<Vec<f32>>>` grid of boxed rows.
//! Addressing a cell is one multiply, the Eq. 4 merge streams each
//! upload's per-layer group through the fused batch kernel
//! [`coca_math::merge_weighted_rows`], and extraction is a gather
//! ([`VectorStore::extract_rows`]) straight into the allocation's layer.
//!
//! ## Determinism / no-drift contract
//!
//! The fused merge kernel reproduces the seed `scale` → `axpy` →
//! `l2_normalize` arithmetic **bit for bit** (asserted in `coca-math`),
//! and [`GlobalCacheTable::merge_batch`] — the whole-round batched pass,
//! one layer at a time across all queued uploads in deterministic
//! client order — is bit-identical to merging the same uploads
//! sequentially (property-tested in `tests/proptest_global.rs`). That
//! equivalence is what lets a sharded server drain its round queue in
//! per-layer batches without changing a single result.

use std::borrow::Cow;

use coca_math::vector::l2_normalize;
use coca_math::{
    merge_weighted_row, merge_weighted_rows, OccupancyBitmap, Precision, QuantizedStore,
    VectorStore,
};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::collect::{LayerUpdate, UpdateTable};
use crate::semantic::{CacheLayer, LocalCache};

/// Weights and row indices of one per-layer merge batch — the job list
/// one [`merge_weighted_rows`] call consumes. The sharded batched merge
/// hands each layer its own buffer, so buffers never cross shards.
#[derive(Debug, Default, Clone)]
struct JobBuf {
    /// Destination rows (= classes) of the weighted-merge jobs.
    dst_rows: Vec<usize>,
    /// Source rows within the upload's layer group, parallel to `dst_rows`.
    src_rows: Vec<usize>,
    /// Eq. 4 old-center weights, parallel to `dst_rows`.
    w_old: Vec<f32>,
    /// Eq. 4 upload weights, parallel to `dst_rows`.
    w_new: Vec<f32>,
    /// One-row f32 staging buffer of the quantized merge path (a
    /// quantized cell dequantizes here, merges in f32, re-quantizes).
    row: Vec<f32>,
}

impl JobBuf {
    fn clear(&mut self) {
        self.dst_rows.clear();
        self.src_rows.clear();
        self.w_old.clear();
        self.w_new.clear();
    }
}

/// Mutable view of one layer's entry storage — dense f32 or quantized.
/// The merge paths work on slots so the Eq. 4 arithmetic is written
/// once; only where a row's bytes live differs.
enum LayerSlotMut<'a> {
    /// A dense f32 layer store (the default mode).
    Dense(&'a mut VectorStore),
    /// A quantized layer (`None` until the first valid cell commits the
    /// layer's dimension, mirroring the dense `dim() == 0` convention).
    Quant(&'a mut Option<QuantizedStore>, Precision),
}

/// Reusable buffers for the server-side merge phase. Lives in the server
/// so the per-round merge is allocation-free once warm.
#[derive(Debug, Default)]
pub struct MergeScratch {
    /// Job list of the serial merge paths.
    jobs: JobBuf,
    /// Per-client prefix Φ snapshots of a batched merge (row-major,
    /// `clients × classes`).
    phi_prefix: Vec<u64>,
    /// Per-layer job lists of the sharded batched merge (one per shard).
    shards: Vec<JobBuf>,
}

impl MergeScratch {
    /// Fresh (lazily sized) scratch.
    pub fn new() -> Self {
        Self::default()
    }
}

/// The Φ context one layer-group merge reads (see
/// [`GlobalCacheTable::merge_update`] / [`GlobalCacheTable::merge_batch`]).
struct MergeWeights<'a> {
    /// Φ snapshot the Eq. 4 weights read.
    cap_phi: &'a [u64],
    /// The uploading client's per-round φ.
    phi: &'a [u64],
    /// γ — the global decay.
    gamma: f32,
}

/// The global cache table plus the global class-frequency vector Φ.
#[derive(Debug, Clone)]
pub struct GlobalCacheTable {
    classes: usize,
    layers: usize,
    /// One dense store per layer, `classes` rows each; a store with an
    /// unset dimension (`dim() == 0`) marks a layer never touched.
    stores: Vec<VectorStore>,
    /// Populated cells: one `classes`-bit bitmap per layer, parallel to
    /// `stores`. Kept per layer (rather than one layer-major bitmap) so a
    /// layer shard owns its `(store, occupancy)` pair outright — the
    /// `&mut` disjointness the rayon-sharded batched merge partitions on.
    /// The serde wire shape is still the single layer-major bitmap.
    occupancy: Vec<OccupancyBitmap>,
    /// Φ — global class frequencies (Eq. 5).
    frequency: Vec<u64>,
    /// Storage precision of the layer entries. [`Precision::F32`] keeps
    /// everything in `stores`; a quantized mode keeps entries in
    /// `qstores` instead (2–4× smaller) and dequantizes +
    /// **renormalizes** on every read, so the unit-norm contract of
    /// extracted caches holds regardless of codec error.
    precision: Precision,
    /// Quantized layer stores, parallel to `stores`; every slot is
    /// `None` in f32 mode, and a quantized layer is `None` until first
    /// touched (the `dim() == 0` convention of dense layers).
    qstores: Vec<Option<QuantizedStore>>,
}

impl GlobalCacheTable {
    /// An empty `classes × layers` table (dense f32 entries).
    pub fn new(classes: usize, layers: usize) -> Self {
        Self::with_precision(classes, layers, Precision::F32)
    }

    /// An empty `classes × layers` table storing entries at `precision`.
    pub fn with_precision(classes: usize, layers: usize, precision: Precision) -> Self {
        assert!(classes > 0 && layers > 0, "degenerate global cache shape");
        Self {
            classes,
            layers,
            stores: vec![VectorStore::empty(); layers],
            occupancy: vec![OccupancyBitmap::new(classes); layers],
            frequency: vec![0; classes],
            precision,
            qstores: vec![None; layers],
        }
    }

    /// Number of class rows.
    pub fn num_classes(&self) -> usize {
        self.classes
    }

    /// Number of layer columns.
    pub fn num_layers(&self) -> usize {
        self.layers
    }

    /// Storage precision of the layer entries.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// Entry dimension of `layer`, or `None` while the layer is untouched
    /// (the `dim() == 0` convention, dense or quantized alike). Snapshot
    /// validation cross-checks pending uploads against this.
    pub fn layer_dim(&self, layer: usize) -> Option<usize> {
        match &self.qstores[layer] {
            Some(q) => Some(q.dim()),
            None => (self.stores[layer].dim() != 0).then(|| self.stores[layer].dim()),
        }
    }

    /// Bytes the layer entries occupy in memory (diagnostics — this is
    /// what quantized storage shrinks; Φ and the bitmaps are shared).
    pub fn store_bytes(&self) -> usize {
        let dense: usize = self.stores.iter().map(VectorStore::bytes).sum();
        let quant: usize = self
            .qstores
            .iter()
            .flatten()
            .map(QuantizedStore::bytes)
            .sum();
        dense + quant
    }

    /// The entry at `(class, layer)`, if populated. A dense table
    /// borrows the row; a quantized table dequantizes and renormalizes
    /// into an owned vector (codec error shrinks the stored norm, and
    /// every consumer expects unit centers).
    pub fn get(&self, class: usize, layer: usize) -> Option<Cow<'_, [f32]>> {
        if !self.occupancy[layer].get(class) {
            return None;
        }
        Some(match &self.qstores[layer] {
            None => Cow::Borrowed(self.stores[layer].row(class)),
            Some(q) => {
                let mut row = q.dequantize_row(class);
                l2_normalize(&mut row);
                Cow::Owned(row)
            }
        })
    }

    /// Directly sets an entry (initial seeding from the shared dataset).
    /// The vector is normalized on insertion (then snapped onto the
    /// codec grid when the table is quantized).
    pub fn set(&mut self, class: usize, layer: usize, mut vector: Vec<f32>) {
        l2_normalize(&mut vector);
        if self.precision == Precision::F32 {
            let store = &mut self.stores[layer];
            if store.dim() == 0 {
                *store = VectorStore::zeros(vector.len(), self.classes);
            }
            store.set_row(class, &vector);
        } else {
            let q = self.qstores[layer].get_or_insert_with(|| {
                QuantizedStore::zeros(vector.len(), self.classes, self.precision)
            });
            q.set_row(class, &vector);
        }
        self.occupancy[layer].set(class);
    }

    /// Re-encodes every populated entry at `precision` (used once at
    /// server construction: the shared-dataset seed builds f32 centers,
    /// then the table drops to the configured storage codec). Quantizing
    /// is lossy; converting back to f32 keeps the dequantized —
    /// renormalized — values, not the originals.
    pub fn convert_precision(&mut self, precision: Precision) {
        if precision == self.precision {
            return;
        }
        for layer in 0..self.layers {
            // Materialize the layer's current entries as unit f32 rows.
            let dense = match self.qstores[layer].take() {
                Some(q) => {
                    let mut d = q.dequantize();
                    for class in self.occupancy[layer].iter_ones() {
                        l2_normalize(d.row_mut(class));
                    }
                    d
                }
                None => std::mem::replace(&mut self.stores[layer], VectorStore::empty()),
            };
            if dense.dim() == 0 {
                continue; // layer never touched
            }
            if precision == Precision::F32 {
                self.stores[layer] = dense;
            } else {
                self.qstores[layer] = Some(QuantizedStore::quantize(&dense, precision));
            }
        }
        self.precision = precision;
    }

    /// Φ — the global class-frequency vector.
    pub fn frequency(&self) -> &[u64] {
        &self.frequency
    }

    /// Seeds Φ with prior counts (server-side shared-dataset profiling),
    /// so the very first ACA call has non-degenerate scores.
    pub fn seed_frequency(&mut self, counts: &[u64]) {
        assert_eq!(counts.len(), self.classes, "frequency length mismatch");
        self.frequency.copy_from_slice(counts);
    }

    /// Eq. 5 alone: `Φ_i ← Φ_i + φ_i` (the GCU-disabled ablation arm
    /// advances frequencies without touching any center).
    pub fn advance_frequency(&mut self, phi: &[u64]) {
        assert_eq!(phi.len(), self.classes, "phi length mismatch");
        for (f, &p) in self.frequency.iter_mut().zip(phi) {
            *f += p;
        }
    }

    /// Exponential Φ decay after churn: `Φ_i ← ⌈β·Φ_i⌉`. A departed
    /// client's frequency mass ages out instead of anchoring ACA's
    /// hot-spot scores forever (see `CocaConfig::leave_phi_decay`).
    pub fn decay_frequency(&mut self, beta: f64) {
        assert!(
            (0.0..=1.0).contains(&beta),
            "decay factor must be in [0,1], got {beta}"
        );
        for f in &mut self.frequency {
            *f = (beta * *f as f64).ceil() as u64;
        }
    }

    /// Merges one layer group of one upload into its layer's `(slot,
    /// occupancy)` pair. `w.cap_phi` is the Φ snapshot the Eq. 4 weights
    /// read (the live vector for a sequential merge, a per-client prefix
    /// for a batched one); `w.phi` is the client's φ.
    ///
    /// A dense layer batches its jobs into one fused
    /// [`merge_weighted_rows`] call; a quantized layer merges cell by
    /// cell — dequantize into the f32 staging row, Eq. 4 in f32,
    /// re-quantize — since its codes cannot stream through the kernel.
    /// Each class appears at most once per upload group, so the
    /// immediate writes never alias a pending read.
    fn merge_layer_group(
        mut slot: LayerSlotMut<'_>,
        occupancy: &mut OccupancyBitmap,
        classes: usize,
        g: &LayerUpdate,
        w: MergeWeights<'_>,
        jobs: &mut JobBuf,
    ) {
        let MergeWeights {
            cap_phi,
            phi,
            gamma,
        } = w;
        let dim = g.vectors.dim();
        let committed_dim = match &slot {
            LayerSlotMut::Dense(store) => store.dim(),
            LayerSlotMut::Quant(q, _) => q.as_ref().map_or(0, QuantizedStore::dim),
        };
        if committed_dim != 0 && committed_dim != dim {
            // Malformed upload layer; ignore rather than poison state.
            debug_assert!(false, "dim mismatch in global merge");
            return;
        }
        jobs.clear();
        jobs.row.resize(dim, 0.0);
        for (row, &class) in g.classes.iter().enumerate() {
            let class = class as usize;
            if class >= classes {
                // Malformed upload cell; ignore rather than poison state.
                continue;
            }
            let phi_i = phi[class] as f32;
            if phi_i <= 0.0 {
                // The paper weights by local frequency; a class the client
                // claims it never saw contributes nothing.
                continue;
            }
            // A never-touched layer commits its dimension only once a
            // *valid* cell actually lands — an upload rejected above
            // cannot pin a wrong dim on the layer forever.
            match &mut slot {
                LayerSlotMut::Dense(store) => {
                    if store.dim() == 0 {
                        **store = VectorStore::zeros(dim, classes);
                    }
                }
                LayerSlotMut::Quant(q, precision) => {
                    if q.is_none() {
                        **q = Some(QuantizedStore::zeros(dim, classes, *precision));
                    }
                }
            }
            if occupancy.get(class) {
                let cap = cap_phi[class] as f32;
                let w_old = gamma * cap / (cap + phi_i);
                let w_new = phi_i / (cap + phi_i);
                match &mut slot {
                    LayerSlotMut::Dense(_) => {
                        jobs.dst_rows.push(class);
                        jobs.src_rows.push(row);
                        jobs.w_old.push(w_old);
                        jobs.w_new.push(w_new);
                    }
                    LayerSlotMut::Quant(q, _) => {
                        let q = q.as_mut().expect("quant layer initialized above");
                        q.dequantize_row_into(class, &mut jobs.row);
                        merge_weighted_row(&mut jobs.row, g.vectors.row(row), w_old, w_new);
                        q.set_row(class, &jobs.row);
                    }
                }
            } else {
                // Cells never seen before adopt the client's vector
                // directly (the Eq. 4 weights with Φ_i = 0 reduce to
                // exactly that only when the entry exists; a missing
                // entry has nothing to decay).
                match &mut slot {
                    LayerSlotMut::Dense(store) => {
                        let dst = store.row_mut(class);
                        dst.copy_from_slice(g.vectors.row(row));
                        l2_normalize(dst);
                    }
                    LayerSlotMut::Quant(q, _) => {
                        let q = q.as_mut().expect("quant layer initialized above");
                        jobs.row.copy_from_slice(g.vectors.row(row));
                        l2_normalize(&mut jobs.row);
                        q.set_row(class, &jobs.row);
                    }
                }
                occupancy.set(class);
            }
        }
        if let LayerSlotMut::Dense(store) = slot {
            merge_weighted_rows(
                store.as_flat_mut(),
                dim,
                &jobs.dst_rows,
                g.vectors.as_flat(),
                &jobs.src_rows,
                &jobs.w_old,
                &jobs.w_new,
            );
        }
    }

    /// Merges one client's upload: Eq. 4 for every populated cell of `u`
    /// (one fused batch per layer group), then Eq. 5 for Φ. `phi` is the
    /// client's per-round class frequency vector φ; `gamma` is the global
    /// decay (paper: 0.99). `scratch` makes the pass allocation-free.
    pub fn merge_update(
        &mut self,
        u: &UpdateTable,
        phi: &[u64],
        gamma: f32,
        scratch: &mut MergeScratch,
    ) {
        assert_eq!(phi.len(), self.classes, "phi length mismatch");
        for g in u.layer_groups() {
            let layer = g.layer as usize;
            if layer >= self.layers {
                // Malformed upload layer; ignore rather than poison state.
                continue;
            }
            let slot = if self.precision == Precision::F32 {
                LayerSlotMut::Dense(&mut self.stores[layer])
            } else {
                LayerSlotMut::Quant(&mut self.qstores[layer], self.precision)
            };
            Self::merge_layer_group(
                slot,
                &mut self.occupancy[layer],
                self.classes,
                g,
                MergeWeights {
                    cap_phi: &self.frequency,
                    phi,
                    gamma,
                },
                &mut scratch.jobs,
            );
        }
        // Eq. 5.
        self.advance_frequency(phi);
    }

    /// Batched round processing: merges every queued upload of a round as
    /// **one pass per layer** — layer-outer, clients inner in the given
    /// order (the caller fixes it deterministically: the server's
    /// queue-and-flush pipeline passes FIFO arrival order, its offline
    /// batch API canonicalizes to client-id order) — so each layer's
    /// store streams through cache once for the whole fleet.
    /// Bit-identical to calling [`GlobalCacheTable::merge_update`] per
    /// upload in the same order: each client's Eq. 4 weights read its
    /// prefix Φ (the Φ a sequential merge would have seen), and Eq. 5
    /// lands once at the end. This is the structural prerequisite for
    /// sharding the server across cores (layers are independent under
    /// this schedule — see [`GlobalCacheTable::merge_batch_sharded`]).
    pub fn merge_batch(
        &mut self,
        uploads: &[(&UpdateTable, &[u64])],
        gamma: f32,
        scratch: &mut MergeScratch,
    ) {
        let n = self.classes;
        self.fill_phi_prefix(uploads, scratch);
        let phi_prefix = std::mem::take(&mut scratch.phi_prefix);
        for layer in 0..self.layers {
            for (c, &(u, phi)) in uploads.iter().enumerate() {
                let Some(g) = u.layer_group(layer as u32) else {
                    continue;
                };
                let slot = if self.precision == Precision::F32 {
                    LayerSlotMut::Dense(&mut self.stores[layer])
                } else {
                    LayerSlotMut::Quant(&mut self.qstores[layer], self.precision)
                };
                Self::merge_layer_group(
                    slot,
                    &mut self.occupancy[layer],
                    n,
                    g,
                    MergeWeights {
                        cap_phi: &phi_prefix[c * n..(c + 1) * n],
                        phi,
                        gamma,
                    },
                    &mut scratch.jobs,
                );
            }
        }
        scratch.phi_prefix = phi_prefix;
        for &(_, phi) in uploads {
            self.advance_frequency(phi);
        }
    }

    /// [`GlobalCacheTable::merge_batch`], sharded across layers with
    /// rayon. **Bit-identical at any worker count** (1, 2, N — asserted
    /// in `tests/proptest_merge_modes.rs`) and to the serial batched and
    /// sequential per-upload merges, because the batched schedule already
    /// made layers independent: each shard owns one layer's `(store,
    /// occupancy)` pair outright, reads only the shared prefix-Φ
    /// snapshots, and runs its clients in the same fixed order a serial
    /// pass would — parallelism changes *where* a layer is merged, never
    /// a single reduction order. Worth its spawn overhead on whole-round
    /// batches (a fleet of uploads × deep layer stacks); per-request
    /// trickles should stay on [`GlobalCacheTable::merge_batch`].
    pub fn merge_batch_sharded(
        &mut self,
        uploads: &[(&UpdateTable, &[u64])],
        gamma: f32,
        scratch: &mut MergeScratch,
    ) {
        let n = self.classes;
        let precision = self.precision;
        self.fill_phi_prefix(uploads, scratch);
        let phi_prefix = std::mem::take(&mut scratch.phi_prefix);
        let mut shard_bufs = std::mem::take(&mut scratch.shards);
        shard_bufs.resize_with(self.layers, JobBuf::default);
        // One work item per layer: the layer's own slot + occupancy
        // (disjoint `&mut`s — fields are parallel vectors) plus a
        // reusable job buffer that travels through the map and back.
        let items: Vec<(usize, LayerSlotMut<'_>, &mut OccupancyBitmap, JobBuf)> = self
            .stores
            .iter_mut()
            .zip(self.qstores.iter_mut())
            .zip(self.occupancy.iter_mut())
            .zip(shard_bufs.drain(..))
            .enumerate()
            .map(|(layer, (((store, qstore), occ), buf))| {
                let slot = if precision == Precision::F32 {
                    LayerSlotMut::Dense(store)
                } else {
                    LayerSlotMut::Quant(qstore, precision)
                };
                (layer, slot, occ, buf)
            })
            .collect();
        scratch.shards = items
            .into_par_iter()
            .map(|(layer, mut slot, occ, mut jobs)| {
                for (c, &(u, phi)) in uploads.iter().enumerate() {
                    let Some(g) = u.layer_group(layer as u32) else {
                        continue;
                    };
                    let reborrow = match &mut slot {
                        LayerSlotMut::Dense(store) => LayerSlotMut::Dense(store),
                        LayerSlotMut::Quant(q, p) => LayerSlotMut::Quant(q, *p),
                    };
                    Self::merge_layer_group(
                        reborrow,
                        occ,
                        n,
                        g,
                        MergeWeights {
                            cap_phi: &phi_prefix[c * n..(c + 1) * n],
                            phi,
                            gamma,
                        },
                        &mut jobs,
                    );
                }
                jobs
            })
            .collect();
        scratch.phi_prefix = phi_prefix;
        for &(_, phi) in uploads {
            self.advance_frequency(phi);
        }
    }

    /// Fills `scratch.phi_prefix` with each client's prefix-Φ snapshot:
    /// the Φ a sequential merge in the given order would read just before
    /// that client's turn (row-major, `clients × classes`).
    fn fill_phi_prefix(&self, uploads: &[(&UpdateTable, &[u64])], scratch: &mut MergeScratch) {
        let n = self.classes;
        scratch.phi_prefix.clear();
        scratch.phi_prefix.reserve(uploads.len() * n);
        let mut running = 0usize;
        for (c, &(_, phi)) in uploads.iter().enumerate() {
            assert_eq!(phi.len(), n, "phi length mismatch");
            if c == 0 {
                scratch.phi_prefix.extend_from_slice(&self.frequency);
            } else {
                let prev = running - n;
                for i in 0..n {
                    let v = scratch.phi_prefix[prev + i] + uploads[c - 1].1[i];
                    scratch.phi_prefix.push(v);
                }
            }
            running += n;
        }
    }

    /// Extracts a local cache: the given `layers`, each filled with the
    /// entries of `classes` (cells never populated are skipped — a client
    /// cannot match against a center that does not exist yet). The rows
    /// gather straight from each layer's contiguous store; `classes` must
    /// not repeat (ACA hot sets never do).
    pub fn extract(&self, layers: &[usize], classes: &[usize]) -> LocalCache {
        let mut out = Vec::with_capacity(layers.len());
        for &layer in layers {
            if layer >= self.layers {
                continue;
            }
            let active = self.qstores[layer].is_some() || self.stores[layer].dim() != 0;
            if !active {
                continue;
            }
            let occ = &self.occupancy[layer];
            let sel: Vec<usize> = classes
                .iter()
                .copied()
                .filter(|&c| c < self.classes && occ.get(c))
                .collect();
            if sel.is_empty() {
                continue;
            }
            let vectors = match &self.qstores[layer] {
                None => self.stores[layer].extract_rows(&sel),
                Some(q) => {
                    // Dequantized rows lose a little norm to the codec;
                    // renormalize so the cache's unit contract holds.
                    let mut v = q.dequantize_rows(&sel);
                    for i in 0..v.rows() {
                        l2_normalize(v.row_mut(i));
                    }
                    v
                }
            };
            debug_assert!(vectors.iter_rows().all(|r| coca_math::is_unit(r, 1e-3)));
            out.push(CacheLayer {
                point: layer,
                classes: sel,
                vectors,
            });
        }
        LocalCache::from_layers(out)
    }

    /// Fraction of cells populated (diagnostics): one popcount per layer
    /// bitmap.
    pub fn fill_ratio(&self) -> f64 {
        let ones: usize = self.occupancy.iter().map(OccupancyBitmap::count_ones).sum();
        ones as f64 / (self.classes * self.layers) as f64
    }

    /// Splits the table into per-layer [`LayerShard`]s plus the shared Φ
    /// vector. Each shard owns its layer's `(store, occupancy)` pair
    /// outright — the same `&mut` disjointness the rayon-sharded batched
    /// merge partitions on, but materialized as owned values so a
    /// networked server can put each layer behind its own lock.
    /// [`GlobalCacheTable::from_shards`] reassembles the exact table.
    pub(crate) fn into_shards(self) -> (Vec<LayerShard>, Vec<u64>) {
        let classes = self.classes;
        let precision = self.precision;
        let shards = self
            .stores
            .into_iter()
            .zip(self.qstores)
            .zip(self.occupancy)
            .map(|((store, qstore), occupancy)| LayerShard {
                classes,
                precision,
                store,
                qstore,
                occupancy,
                jobs: JobBuf::default(),
            })
            .collect();
        (shards, self.frequency)
    }

    /// Reassembles a table from [`GlobalCacheTable::into_shards`] parts
    /// (digests, snapshots, whole-table extraction). Pure regrouping —
    /// no cell is touched.
    pub(crate) fn from_shards(shards: Vec<LayerShard>, frequency: Vec<u64>) -> Self {
        assert!(!shards.is_empty(), "degenerate global cache shape");
        let classes = shards[0].classes;
        let precision = shards[0].precision;
        assert_eq!(classes, frequency.len(), "frequency length mismatch");
        let layers = shards.len();
        let mut stores = Vec::with_capacity(layers);
        let mut qstores = Vec::with_capacity(layers);
        let mut occupancy = Vec::with_capacity(layers);
        for s in shards {
            assert_eq!(s.classes, classes, "shard class count mismatch");
            assert_eq!(s.precision, precision, "shard precision mismatch");
            stores.push(s.store);
            qstores.push(s.qstore);
            occupancy.push(s.occupancy);
        }
        Self {
            classes,
            layers,
            stores,
            occupancy,
            frequency,
            precision,
            qstores,
        }
    }

    /// FNV-1a fingerprint of the serialized table (the wire shape, Φ
    /// included). Two tables with equal digests went through the same
    /// merge history bit for bit — the cheap equivalence check the
    /// daemon's loopback-vs-in-process tests and its `Digest` protocol
    /// message rely on.
    pub fn digest(&self) -> u64 {
        let json = serde_json::to_string(self).expect("global table always serializes");
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in json.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x0100_0000_01b3);
        }
        h
    }
}

/// One layer's share of the global table, carved out by
/// [`GlobalCacheTable::into_shards`]: the `(store, occupancy)` pair —
/// dense or quantized — plus a private job buffer; everything a merge or
/// an extract of that layer touches. The sharded daemon server puts each
/// shard behind its own `RwLock`, so concurrent requests on disjoint
/// layers never serialize, while the merge arithmetic stays the exact
/// [`GlobalCacheTable`] Eq. 4 path (same private primitive).
#[derive(Debug, Clone)]
pub(crate) struct LayerShard {
    classes: usize,
    precision: Precision,
    store: VectorStore,
    qstore: Option<QuantizedStore>,
    occupancy: OccupancyBitmap,
    jobs: JobBuf,
}

impl LayerShard {
    /// Merges one upload's group for this layer (Eq. 4). `cap_phi` is the
    /// Φ snapshot the weights read — the live vector for a sequential
    /// merge, the client's prefix Φ for a batched one — and `phi` the
    /// client's φ. Delegates to the same primitive every
    /// [`GlobalCacheTable`] merge path uses, so the result is
    /// bit-identical to an unsharded merge in the same order.
    pub(crate) fn merge_group(
        &mut self,
        g: &LayerUpdate,
        cap_phi: &[u64],
        phi: &[u64],
        gamma: f32,
    ) {
        let slot = if self.precision == Precision::F32 {
            LayerSlotMut::Dense(&mut self.store)
        } else {
            LayerSlotMut::Quant(&mut self.qstore, self.precision)
        };
        GlobalCacheTable::merge_layer_group(
            slot,
            &mut self.occupancy,
            self.classes,
            g,
            MergeWeights {
                cap_phi,
                phi,
                gamma,
            },
            &mut self.jobs,
        );
    }

    /// Extracts this layer's entries for `classes` — the single-layer
    /// body of [`GlobalCacheTable::extract`], same skip rules (untouched
    /// layer, unpopulated cells) and the same unit-norm contract.
    /// `point` is the layer's index in the model's cache-point list.
    pub(crate) fn extract_layer(&self, point: usize, classes: &[usize]) -> Option<CacheLayer> {
        if self.qstore.is_none() && self.store.dim() == 0 {
            return None;
        }
        let sel: Vec<usize> = classes
            .iter()
            .copied()
            .filter(|&c| c < self.classes && self.occupancy.get(c))
            .collect();
        if sel.is_empty() {
            return None;
        }
        let vectors = match &self.qstore {
            None => self.store.extract_rows(&sel),
            Some(q) => {
                let mut v = q.dequantize_rows(&sel);
                for i in 0..v.rows() {
                    l2_normalize(v.row_mut(i));
                }
                v
            }
        };
        debug_assert!(vectors.iter_rows().all(|r| coca_math::is_unit(r, 1e-3)));
        Some(CacheLayer {
            point,
            classes: sel,
            vectors,
        })
    }
}

// Flat-buffer wire shape, the same way `CacheLayer` ships: per-layer
// `{dim, data}` stores plus the packed occupancy words. The derive shims
// cannot express it, so the traits are implemented by hand. The wire
// keeps the original single **layer-major** bitmap (bit `layer · classes
// + class`) even though the table stores one bitmap per layer — the
// in-memory split is a sharding detail, not a protocol change.
//
// A dense f32 table serializes exactly as it always has; a quantized
// table adds optional `precision` + `qstores` keys (absent keys read
// back as f32, so every committed f32 snapshot stays valid).
impl Serialize for GlobalCacheTable {
    fn to_value(&self) -> serde::Value {
        let mut flat = OccupancyBitmap::new(self.classes * self.layers);
        for (layer, occ) in self.occupancy.iter().enumerate() {
            for class in occ.iter_ones() {
                flat.set(layer * self.classes + class);
            }
        }
        let mut m = serde::Map::new();
        m.insert("classes".into(), Serialize::to_value(&self.classes));
        m.insert("layers".into(), Serialize::to_value(&self.layers));
        m.insert("stores".into(), Serialize::to_value(&self.stores));
        m.insert("occupancy".into(), Serialize::to_value(&flat));
        m.insert("frequency".into(), Serialize::to_value(&self.frequency));
        if self.precision != Precision::F32 {
            m.insert("precision".into(), Serialize::to_value(&self.precision));
            m.insert("qstores".into(), Serialize::to_value(&self.qstores));
        }
        serde::Value::Object(m)
    }
}

impl Deserialize for GlobalCacheTable {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let serde::Value::Object(m) = v else {
            return Err(serde::Error::custom(format!(
                "expected object for GlobalCacheTable, got {}",
                v.kind()
            )));
        };
        let classes: usize = serde::__field(m, "classes")?;
        let layers: usize = serde::__field(m, "layers")?;
        let stores: Vec<VectorStore> = serde::__field(m, "stores")?;
        let occupancy: OccupancyBitmap = serde::__field(m, "occupancy")?;
        let frequency: Vec<u64> = serde::__field(m, "frequency")?;
        let precision: Option<Precision> = serde::__field(m, "precision")?;
        let precision = precision.unwrap_or(Precision::F32);
        let qstores: Vec<Option<QuantizedStore>> = if precision == Precision::F32 {
            vec![None; layers]
        } else {
            serde::__field(m, "qstores")?
        };
        if classes == 0 || layers == 0 {
            return Err(serde::Error::custom("GlobalCacheTable: degenerate shape"));
        }
        if stores.len() != layers
            || qstores.len() != layers
            || occupancy.len() != classes * layers
            || frequency.len() != classes
        {
            return Err(serde::Error::custom(
                "GlobalCacheTable: shape mismatch".to_string(),
            ));
        }
        for (j, s) in stores.iter().enumerate() {
            if s.dim() != 0 && s.rows() != classes {
                return Err(serde::Error::custom(format!(
                    "GlobalCacheTable: layer {j} has {} rows for {classes} classes",
                    s.rows()
                )));
            }
        }
        for (j, q) in qstores.iter().enumerate() {
            let Some(q) = q else { continue };
            if precision == Precision::F32 {
                return Err(serde::Error::custom(
                    "GlobalCacheTable: quantized layer in an f32 table".to_string(),
                ));
            }
            if q.precision() != precision {
                return Err(serde::Error::custom(format!(
                    "GlobalCacheTable: layer {j} codec {} in a {} table",
                    q.precision().label(),
                    precision.label()
                )));
            }
            if q.rows() != classes {
                return Err(serde::Error::custom(format!(
                    "GlobalCacheTable: layer {j} has {} rows for {classes} classes",
                    q.rows()
                )));
            }
            if stores[j].dim() != 0 {
                return Err(serde::Error::custom(format!(
                    "GlobalCacheTable: layer {j} is both dense and quantized"
                )));
            }
        }
        // Split the layer-major wire bitmap into the per-layer bitmaps
        // the table stores, validating as we go.
        let mut per_layer = vec![OccupancyBitmap::new(classes); layers];
        for bit in occupancy.iter_ones() {
            let layer = bit / classes;
            if stores[layer].dim() == 0 && qstores[layer].is_none() {
                return Err(serde::Error::custom(
                    "GlobalCacheTable: occupied cell in an uninitialized layer".to_string(),
                ));
            }
            per_layer[layer].set(bit % classes);
        }
        Ok(Self {
            classes,
            layers,
            stores,
            occupancy: per_layer,
            frequency,
            precision,
            qstores,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coca_math::{cosine, l2_norm};

    fn table() -> GlobalCacheTable {
        GlobalCacheTable::new(4, 3)
    }

    fn upload(cells: &[(usize, usize, Vec<f32>)]) -> UpdateTable {
        let mut u = UpdateTable::new();
        for (c, l, v) in cells {
            u.absorb(*c, *l, v, 0.0);
        }
        u
    }

    fn merge(t: &mut GlobalCacheTable, u: &UpdateTable, phi: &[u64], gamma: f32) {
        t.merge_update(u, phi, gamma, &mut MergeScratch::new());
    }

    #[test]
    fn merge_into_empty_adopts_client_vector() {
        let mut t = table();
        let u = upload(&[(1, 2, vec![0.0, 3.0])]);
        merge(&mut t, &u, &[0, 5, 0, 0], 0.99);
        let e = t.get(1, 2).unwrap();
        assert!(cosine(&e, &[0.0, 1.0]) > 0.999);
        assert_eq!(t.frequency(), &[0, 5, 0, 0]);
        assert!(t.get(0, 0).is_none());
    }

    #[test]
    fn merge_weights_by_frequency() {
        let mut t = table();
        t.set(0, 0, vec![1.0, 0.0]);
        t.seed_frequency(&[90, 0, 0, 0]);
        // A client with small φ barely moves the entry...
        let u = upload(&[(0, 0, vec![0.0, 1.0])]);
        merge(&mut t, &u, &[10, 0, 0, 0], 0.99);
        let e = t.get(0, 0).unwrap().to_vec();
        assert!(cosine(&e, &[1.0, 0.0]) > 0.9, "entry {e:?}");
        assert_eq!(t.frequency()[0], 100);
        // ...but a dominant client swings it.
        let u = upload(&[(0, 0, vec![0.0, 1.0])]);
        merge(&mut t, &u, &[900, 0, 0, 0], 0.99);
        let e = t.get(0, 0).unwrap().to_vec();
        assert!(cosine(&e, &[0.0, 1.0]) > 0.9, "entry {e:?}");
    }

    #[test]
    fn merged_entries_stay_unit_norm() {
        let mut t = table();
        t.set(2, 1, vec![1.0, 1.0]);
        t.seed_frequency(&[0, 0, 7, 0]);
        let u = upload(&[(2, 1, vec![-1.0, 1.0])]);
        merge(&mut t, &u, &[0, 0, 3, 0], 0.99);
        assert!((l2_norm(&t.get(2, 1).unwrap()) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn zero_phi_classes_do_not_merge() {
        let mut t = table();
        t.set(3, 0, vec![1.0, 0.0]);
        let u = upload(&[(3, 0, vec![0.0, 1.0])]);
        merge(&mut t, &u, &[0, 0, 0, 0], 0.99);
        assert!(cosine(&t.get(3, 0).unwrap(), &[1.0, 0.0]) > 0.999);
    }

    #[test]
    fn out_of_range_cells_are_ignored() {
        let mut t = table();
        let mut u = UpdateTable::new();
        u.absorb(99, 99, &[1.0, 0.0], 0.0);
        u.absorb(99, 0, &[1.0, 0.0], 0.0);
        merge(&mut t, &u, &[1, 0, 0, 0], 0.99); // must not panic
        assert_eq!(t.frequency()[0], 1);
        assert_eq!(t.fill_ratio(), 0.0);
        // A rejected group must not have pinned layer 0's dimension: a
        // later honest upload with a different dim still merges.
        let honest = upload(&[(0, 0, vec![0.0, 1.0, 0.0])]);
        merge(&mut t, &honest, &[3, 0, 0, 0], 0.99);
        assert!(t.get(0, 0).is_some(), "layer poisoned by malformed upload");
    }

    #[test]
    fn extract_skips_unpopulated_cells() {
        let mut t = table();
        t.set(0, 1, vec![1.0, 0.0]);
        t.set(2, 1, vec![0.0, 1.0]);
        t.set(0, 2, vec![1.0, 1.0]);
        let cache = t.extract(&[1, 2], &[0, 2]);
        assert_eq!(cache.num_layers(), 2);
        assert_eq!(cache.layers()[0].len(), 2); // classes 0 and 2 at layer 1
        assert_eq!(cache.layers()[1].len(), 1); // only class 0 at layer 2
                                                // Requesting an entirely empty layer yields no activated layer.
        let cache = t.extract(&[0], &[0, 1, 2, 3]);
        assert_eq!(cache.num_layers(), 0);
    }

    #[test]
    fn fill_ratio_counts_cells() {
        let mut t = table();
        assert_eq!(t.fill_ratio(), 0.0);
        t.set(0, 0, vec![1.0, 0.0]);
        assert!((t.fill_ratio() - 1.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn batched_merge_is_bit_identical_to_sequential() {
        let build = || {
            let mut t = table();
            t.set(0, 0, vec![1.0, 0.0]);
            t.set(1, 1, vec![0.0, 1.0]);
            t.seed_frequency(&[5, 3, 0, 0]);
            t
        };
        let u1 = upload(&[(0, 0, vec![0.2, 0.9]), (2, 1, vec![0.5, 0.5])]);
        let phi1: Vec<u64> = vec![4, 0, 7, 0];
        let u2 = upload(&[(0, 0, vec![-0.7, 0.1]), (1, 1, vec![0.9, -0.1])]);
        let phi2: Vec<u64> = vec![2, 6, 0, 0];

        let mut scratch = MergeScratch::new();
        let mut seq = build();
        seq.merge_update(&u1, &phi1, 0.99, &mut scratch);
        seq.merge_update(&u2, &phi2, 0.99, &mut scratch);

        let mut bat = build();
        bat.merge_batch(&[(&u1, &phi1), (&u2, &phi2)], 0.99, &mut scratch);

        assert_eq!(seq.frequency(), bat.frequency());
        for c in 0..4 {
            for l in 0..3 {
                match (seq.get(c, l), bat.get(c, l)) {
                    (None, None) => {}
                    (Some(a), Some(b)) => {
                        for (x, y) in a.iter().zip(b.iter()) {
                            assert_eq!(x.to_bits(), y.to_bits(), "cell ({c},{l})");
                        }
                    }
                    (a, b) => panic!("occupancy differs at ({c},{l}): {a:?} vs {b:?}"),
                }
            }
        }
    }

    #[test]
    fn sharded_merge_is_bit_identical_to_serial_batched() {
        let build = || {
            let mut t = table();
            t.set(0, 0, vec![1.0, 0.0]);
            t.set(1, 1, vec![0.0, 1.0]);
            t.set(3, 2, vec![0.6, 0.8]);
            t.seed_frequency(&[5, 3, 0, 2]);
            t
        };
        let u1 = upload(&[(0, 0, vec![0.2, 0.9]), (2, 1, vec![0.5, 0.5])]);
        let phi1: Vec<u64> = vec![4, 0, 7, 0];
        let u2 = upload(&[(0, 0, vec![-0.7, 0.1]), (3, 2, vec![0.9, -0.1])]);
        let phi2: Vec<u64> = vec![2, 6, 0, 5];
        let batch: Vec<(&UpdateTable, &[u64])> =
            vec![(&u1, phi1.as_slice()), (&u2, phi2.as_slice())];

        let mut scratch = MergeScratch::new();
        let mut serial = build();
        serial.merge_batch(&batch, 0.99, &mut scratch);

        for width in [1usize, 2, 8] {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(width)
                .build()
                .unwrap();
            let mut sharded = build();
            pool.install(|| sharded.merge_batch_sharded(&batch, 0.99, &mut scratch));
            assert_eq!(serial.frequency(), sharded.frequency(), "width {width}");
            for c in 0..4 {
                for l in 0..3 {
                    match (serial.get(c, l), sharded.get(c, l)) {
                        (None, None) => {}
                        (Some(a), Some(b)) => {
                            for (x, y) in a.iter().zip(b.iter()) {
                                assert_eq!(x.to_bits(), y.to_bits(), "cell ({c},{l}) w={width}");
                            }
                        }
                        (a, b) => panic!("occupancy differs at ({c},{l}): {a:?} vs {b:?}"),
                    }
                }
            }
        }
    }

    #[test]
    fn quantized_table_merges_and_extracts_unit_centers() {
        for precision in [Precision::F16, Precision::I8] {
            let mut t = GlobalCacheTable::with_precision(4, 3, precision);
            assert_eq!(t.precision(), precision);
            t.set(0, 1, vec![0.6, 0.8]);
            t.seed_frequency(&[8, 0, 0, 0]);
            // Reads renormalize: codec error must not leak a non-unit
            // center out of the table.
            let e = t.get(0, 1).unwrap();
            assert!((l2_norm(&e) - 1.0).abs() < 1e-6, "norm {}", l2_norm(&e));
            assert!(cosine(&e, &[0.6, 0.8]) > 0.99);
            // Merge an occupied cell (Eq. 4 through the staging row) and
            // adopt a fresh one.
            let u = upload(&[(0, 1, vec![-0.8, 0.6]), (2, 1, vec![1.0, 0.0])]);
            merge(&mut t, &u, &[8, 0, 4, 0], 0.99);
            let moved = t.get(0, 1).unwrap();
            assert!(cosine(&moved, &[0.6, 0.8]) < 0.999, "entry did not move");
            assert!((l2_norm(&moved) - 1.0).abs() < 1e-6);
            assert!(cosine(&t.get(2, 1).unwrap(), &[1.0, 0.0]) > 0.99);
            assert_eq!(t.frequency(), &[16, 0, 4, 0]);
            // Extraction yields unit rows (the CacheLayer contract).
            let cache = t.extract(&[1], &[0, 2]);
            assert_eq!(cache.num_layers(), 1);
            assert_eq!(cache.layers()[0].len(), 2);
            // Footprint: i8 ≈ 4× smaller than f32, f16 = 2×.
            let f32_bytes = 4 * 2 * 4; // classes × dim × 4 per touched layer
            assert!(t.store_bytes() < f32_bytes, "{:?}", t.store_bytes());
        }
    }

    #[test]
    fn quantized_batched_merge_matches_sequential() {
        let build = || {
            let mut t = GlobalCacheTable::with_precision(4, 3, Precision::I8);
            t.set(0, 0, vec![1.0, 0.0]);
            t.set(1, 1, vec![0.0, 1.0]);
            t.seed_frequency(&[5, 3, 0, 0]);
            t
        };
        let u1 = upload(&[(0, 0, vec![0.2, 0.9]), (2, 1, vec![0.5, 0.5])]);
        let phi1: Vec<u64> = vec![4, 0, 7, 0];
        let u2 = upload(&[(0, 0, vec![-0.7, 0.1]), (1, 1, vec![0.9, -0.1])]);
        let phi2: Vec<u64> = vec![2, 6, 0, 0];

        let mut scratch = MergeScratch::new();
        let mut seq = build();
        seq.merge_update(&u1, &phi1, 0.99, &mut scratch);
        seq.merge_update(&u2, &phi2, 0.99, &mut scratch);

        let mut bat = build();
        bat.merge_batch(&[(&u1, &phi1), (&u2, &phi2)], 0.99, &mut scratch);

        let mut sharded = build();
        sharded.merge_batch_sharded(&[(&u1, &phi1), (&u2, &phi2)], 0.99, &mut scratch);

        for other in [&bat, &sharded] {
            assert_eq!(seq.frequency(), other.frequency());
            for c in 0..4 {
                for l in 0..3 {
                    match (seq.get(c, l), other.get(c, l)) {
                        (None, None) => {}
                        (Some(a), Some(b)) => {
                            for (x, y) in a.iter().zip(b.iter()) {
                                assert_eq!(x.to_bits(), y.to_bits(), "cell ({c},{l})");
                            }
                        }
                        (a, b) => panic!("occupancy differs at ({c},{l}): {a:?} vs {b:?}"),
                    }
                }
            }
        }
    }

    #[test]
    fn convert_precision_round_trips_occupancy_and_shrinks_storage() {
        let mut t = table();
        t.set(0, 0, vec![0.6, 0.8]);
        t.set(2, 1, vec![1.0, 0.0]);
        t.seed_frequency(&[9, 0, 4, 0]);
        let dense_bytes = t.store_bytes();
        let reference = t.clone();
        t.convert_precision(Precision::I8);
        assert_eq!(t.precision(), Precision::I8);
        assert!(t.store_bytes() < dense_bytes, "{} bytes", t.store_bytes());
        for (c, l) in [(0usize, 0usize), (2, 1)] {
            let q = t.get(c, l).unwrap();
            let r = reference.get(c, l).unwrap();
            assert!(cosine(&q, &r) > 0.999, "({c},{l})");
        }
        assert!(t.get(1, 0).is_none());
        // Back to f32: entries stay at their snapped (renormalized)
        // positions — conversion is lossy, not magic — but occupancy,
        // Φ, and unit norms survive.
        t.convert_precision(Precision::F32);
        assert_eq!(t.precision(), Precision::F32);
        assert_eq!(t.frequency(), reference.frequency());
        let e = t.get(0, 0).unwrap();
        assert!((l2_norm(&e) - 1.0).abs() < 1e-6);
        assert!(cosine(&e, &[0.6, 0.8]) > 0.999);
    }

    #[test]
    fn quantized_serde_round_trips_and_f32_wire_shape_is_unchanged() {
        // f32 tables must not grow new keys (committed snapshots).
        let mut dense = table();
        dense.set(1, 0, vec![0.0, 1.0]);
        let json = serde_json::to_string(&dense).unwrap();
        assert!(!json.contains("qstores") && !json.contains("precision"));

        let mut t = GlobalCacheTable::with_precision(4, 3, Precision::F16);
        t.set(1, 0, vec![0.0, 1.0]);
        t.set(3, 2, vec![0.6, 0.8]);
        t.seed_frequency(&[9, 8, 7, 6]);
        let json = serde_json::to_string(&t).unwrap();
        let back: GlobalCacheTable = serde_json::from_str(&json).unwrap();
        assert_eq!(back.precision(), Precision::F16);
        assert_eq!(back.frequency(), t.frequency());
        for (c, l) in [(1usize, 0usize), (3, 2)] {
            assert_eq!(back.get(c, l).unwrap(), t.get(c, l).unwrap());
        }
        assert!(back.get(0, 0).is_none());
        assert_eq!(back.store_bytes(), t.store_bytes());
    }

    #[test]
    fn layer_shards_reproduce_table_merges_bit_for_bit() {
        for precision in [Precision::F32, Precision::I8] {
            let build = || {
                let mut t = GlobalCacheTable::with_precision(4, 3, precision);
                t.set(0, 0, vec![1.0, 0.0]);
                t.set(1, 1, vec![0.0, 1.0]);
                t.seed_frequency(&[5, 3, 0, 0]);
                t
            };
            let u1 = upload(&[(0, 0, vec![0.2, 0.9]), (2, 1, vec![0.5, 0.5])]);
            let phi1: Vec<u64> = vec![4, 0, 7, 0];
            let u2 = upload(&[(0, 0, vec![-0.7, 0.1]), (1, 1, vec![0.9, -0.1])]);
            let phi2: Vec<u64> = vec![2, 6, 0, 0];

            let mut reference = build();
            reference.merge_update(&u1, &phi1, 0.99, &mut MergeScratch::new());
            reference.merge_update(&u2, &phi2, 0.99, &mut MergeScratch::new());

            // Sharded: sequential per-upload merges against the live Φ,
            // one shard at a time, then Eq. 5 — the daemon's per-upload
            // path.
            let (mut shards, mut freq) = build().into_shards();
            for (u, phi) in [(&u1, &phi1), (&u2, &phi2)] {
                for g in u.layer_groups() {
                    shards[g.layer as usize].merge_group(g, &freq, phi, 0.99);
                }
                for (f, &p) in freq.iter_mut().zip(phi) {
                    *f += p;
                }
            }
            let back = GlobalCacheTable::from_shards(shards, freq);
            assert_eq!(back.digest(), reference.digest(), "{precision:?}");
            assert_eq!(back.frequency(), reference.frequency());

            // Extraction through a shard matches whole-table extraction.
            let (shards, _) = reference.clone().into_shards();
            let whole = reference.extract(&[1], &[0, 1, 2]);
            let layer = shards[1].extract_layer(1, &[0, 1, 2]).unwrap();
            assert_eq!(whole.layers()[0].classes, layer.classes);
            assert_eq!(whole.layers()[0].vectors.as_flat(), layer.vectors.as_flat());
            assert!(shards[2].extract_layer(2, &[0, 1, 2]).is_none());
        }
    }

    #[test]
    fn digest_distinguishes_states_and_survives_shard_round_trips() {
        let mut t = table();
        t.set(0, 0, vec![1.0, 0.0]);
        t.seed_frequency(&[5, 3, 0, 0]);
        let d0 = t.digest();
        assert_eq!(d0, t.clone().digest(), "digest is a pure function");
        let (shards, freq) = t.clone().into_shards();
        assert_eq!(GlobalCacheTable::from_shards(shards, freq).digest(), d0);
        let mut moved = t.clone();
        moved.advance_frequency(&[1, 0, 0, 0]);
        assert_ne!(moved.digest(), d0, "Φ is part of the fingerprint");
    }

    #[test]
    fn decay_frequency_ages_mass_out() {
        let mut t = table();
        t.seed_frequency(&[100, 7, 0, 1]);
        t.decay_frequency(0.5);
        assert_eq!(t.frequency(), &[50, 4, 0, 1]);
        t.decay_frequency(1.0);
        assert_eq!(t.frequency(), &[50, 4, 0, 1], "β = 1 is a no-op");
    }

    #[test]
    fn serde_round_trips_and_validates() {
        let mut t = table();
        t.set(1, 0, vec![0.0, 1.0]);
        t.set(3, 2, vec![1.0, 0.0]);
        t.seed_frequency(&[9, 8, 7, 6]);
        let json = serde_json::to_string(&t).unwrap();
        let back: GlobalCacheTable = serde_json::from_str(&json).unwrap();
        assert_eq!(back.num_classes(), 4);
        assert_eq!(back.num_layers(), 3);
        assert_eq!(back.frequency(), t.frequency());
        assert_eq!(back.get(1, 0).unwrap(), t.get(1, 0).unwrap());
        assert_eq!(back.get(3, 2).unwrap(), t.get(3, 2).unwrap());
        assert!(back.get(0, 0).is_none());
        assert_eq!(back.fill_ratio(), t.fill_ratio());
        // An occupied bit pointing into an uninitialized layer is invalid.
        let bad = r#"{"classes":2,"layers":1,"stores":[{"dim":0,"data":[]}],
                      "occupancy":{"len":2,"words":[1]},"frequency":[0,0]}"#;
        assert!(serde_json::from_str::<GlobalCacheTable>(bad).is_err());
        // A layer store whose row count disagrees with the class count.
        let ragged = r#"{"classes":2,"layers":1,"stores":[{"dim":2,"data":[1.0,0.0]}],
                         "occupancy":{"len":2,"words":[0]},"frequency":[0,0]}"#;
        assert!(serde_json::from_str::<GlobalCacheTable>(ragged).is_err());
    }
}
