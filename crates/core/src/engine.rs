//! The CoCa instantiation of the virtual-time engine (§IV.A round
//! workflow, §VI.C/I) plus the workload model every method shares.
//!
//! Clients boot staggered, then loop: request cache → (link + server FIFO
//! queue + link) → run F frames locally → upload collected updates →
//! request again. All cross-device interaction resolves through the
//! discrete-event loop in [`crate::driver`], so runs are exactly
//! reproducible.
//!
//! [`Scenario`] pins down everything two *methods* must share to be
//! comparable (model, feature universe, client drift profiles, class
//! distributions, per-client streams); the baselines crate builds its
//! [`MethodDriver`](crate::driver::MethodDriver)s on the same scenario so
//! CoCa and every baseline see byte-identical frames through the same
//! event loop — [`EngineReport::frame_digest`] proves it per run.

use coca_data::partition::{client_distributions, NonIidLevel};
use coca_data::{DatasetSpec, Frame, PopularityPhase, StreamConfig, StreamGenerator};
use coca_metrics::recorder::{LatencyRecorder, RunSummary};
use coca_metrics::WindowedSummary;
use coca_model::{ClientProfile, ModelId, ModelRuntime};
use coca_net::LinkModel;
use coca_sim::{SeedTree, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

use crate::client::{AbsorbStats, CocaClient};
use crate::config::CocaConfig;
use crate::driver::{
    drive_plan, DriveConfig, DrivePlan, FrameOutcome, FrameStep, MethodDriver, NoMsg,
};
use crate::proto::{CacheAllocation, CacheRequest, UpdateUpload};
use crate::server::{CocaServer, ServiceCostModel};

/// Everything that defines the *workload* (shared across methods).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScenarioConfig {
    /// Model under test.
    pub model: ModelId,
    /// Dataset (or subset).
    pub dataset: DatasetSpec,
    /// Number of edge clients.
    pub num_clients: usize,
    /// Non-IID level `p = 1/ε` (0 = IID).
    pub non_iid: NonIidLevel,
    /// Population class popularity (uniform or long-tail); length must
    /// equal the dataset's class count.
    pub global_popularity: Vec<f64>,
    /// Per-client context-drift magnitude (non-IID feature shift).
    pub drift_mag: f32,
    /// Fraction of drift shared across clients.
    pub drift_shared_frac: f32,
    /// Override of the dataset's mean same-class run length.
    pub mean_run_length: Option<f64>,
    /// Master seed: fixes the universe, partitions and streams.
    pub seed: u64,
}

impl ScenarioConfig {
    /// A scenario with uniform popularity and sensible defaults.
    pub fn new(model: ModelId, dataset: DatasetSpec) -> Self {
        let n = dataset.num_classes;
        Self {
            model,
            dataset,
            num_clients: 10,
            non_iid: NonIidLevel::IID,
            global_popularity: coca_data::distribution::uniform_weights(n),
            drift_mag: 0.25,
            drift_shared_frac: 0.7,
            mean_run_length: None,
            seed: 42,
        }
    }
}

/// A materialized workload: runtime + per-client profiles + distributions.
#[derive(Debug)]
pub struct Scenario {
    /// The simulated model (shared by every method).
    pub rt: ModelRuntime,
    /// Per-client drift profiles.
    pub profiles: Vec<ClientProfile>,
    /// Per-client class distributions.
    pub distributions: Vec<Vec<f64>>,
    cfg: ScenarioConfig,
    seeds: SeedTree,
    /// Per-client piecewise popularity schedules (empty = static streams).
    /// Set by [`crate::spec::ScenarioSpec::materialize`] from the
    /// timeline's `PopularityShift` events.
    schedules: Vec<Vec<PopularityPhase>>,
}

impl Scenario {
    /// Builds the scenario deterministically from its config.
    ///
    /// # Panics
    /// Panics if the popularity vector length mismatches the dataset.
    pub fn build(cfg: ScenarioConfig) -> Self {
        assert_eq!(
            cfg.global_popularity.len(),
            cfg.dataset.num_classes,
            "popularity length must match class count"
        );
        let seeds = SeedTree::new(cfg.seed);
        let rt = ModelRuntime::new(cfg.model, &cfg.dataset, &seeds.child("universe"));
        let profiles: Vec<ClientProfile> = (0..cfg.num_clients)
            .map(|k| {
                ClientProfile::new(
                    k as u64,
                    cfg.drift_mag,
                    cfg.drift_shared_frac,
                    &seeds.child("universe"),
                )
            })
            .collect();
        let distributions = client_distributions(
            &cfg.global_popularity,
            cfg.num_clients,
            cfg.non_iid,
            &seeds.child("partition"),
        );
        let schedules = vec![Vec::new(); cfg.num_clients];
        Self {
            rt,
            profiles,
            distributions,
            cfg,
            seeds,
            schedules,
        }
    }

    /// Attaches per-client piecewise popularity schedules (one vector per
    /// client; an empty vector leaves that client's stream static).
    ///
    /// # Panics
    /// Panics if the outer length mismatches the client count.
    pub fn set_popularity_schedules(&mut self, schedules: Vec<Vec<PopularityPhase>>) {
        assert_eq!(
            schedules.len(),
            self.cfg.num_clients,
            "one schedule slot per client"
        );
        self.schedules = schedules;
    }

    /// The scenario's configuration.
    pub fn config(&self) -> &ScenarioConfig {
        &self.cfg
    }

    /// The scenario's seed node (method drivers derive their own children).
    pub fn seeds(&self) -> &SeedTree {
        &self.seeds
    }

    /// A fresh, deterministic frame stream for client `k`. Every call
    /// returns an identical generator — methods compared on this scenario
    /// consume byte-identical streams. Popularity schedules attached via
    /// [`Scenario::set_popularity_schedules`] are baked in, so dynamic
    /// scenarios keep the same replayability guarantee.
    pub fn stream(&self, k: usize) -> StreamGenerator {
        let run = self
            .cfg
            .mean_run_length
            .unwrap_or(self.cfg.dataset.mean_run_length);
        let mut cfg = StreamConfig::new(self.distributions[k].clone(), run);
        if !self.schedules[k].is_empty() {
            cfg = cfg.with_schedule(self.schedules[k].clone());
        }
        StreamGenerator::new(cfg, &self.seeds.child_idx("client-stream", k as u64))
    }
}

/// Engine-level knobs on top of the scenario.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// The CoCa configuration.
    pub coca: CocaConfig,
    /// Rounds each client executes.
    pub rounds: usize,
    /// Client↔server link. The default is the paper's router-based WiFi
    /// testbed model (≈2 ms one-way, 150 Mbit/s goodput), shared with
    /// every baseline driver so cross-method numbers price the same
    /// network.
    pub link: LinkModel,
    /// Server-side service costs.
    pub costs: ServiceCostModel,
    /// Clients boot uniformly at random within this window.
    pub boot_window_ms: f64,
}

impl EngineConfig {
    /// Defaults used by the experiments. The link is the shared
    /// [`LinkModel::default`] testbed model (≈2 ms one-way, 150 Mbit/s) —
    /// the *same* link every baseline driver runs under, so cross-method
    /// latency numbers price identical network conditions.
    pub fn new(coca: CocaConfig) -> Self {
        // Network/boot defaults come from DriveConfig (which in turn reads
        // the shared-testbed constants from coca-net) so CoCa and the
        // baseline runners share a single source of truth.
        let shared = DriveConfig::new(10, coca.round_frames);
        Self {
            coca,
            rounds: shared.rounds,
            link: shared.link,
            costs: ServiceCostModel::default(),
            boot_window_ms: shared.boot_window_ms,
        }
    }

    /// The method-agnostic engine knobs this configuration induces.
    pub fn drive_config(&self) -> DriveConfig {
        DriveConfig {
            rounds: self.rounds,
            frames_per_round: self.coca.round_frames,
            link: self.link,
            boot_window_ms: self.boot_window_ms,
        }
    }
}

/// Aggregated outcome of one engine run.
#[derive(Debug, Clone)]
pub struct EngineReport {
    /// Frames processed across all clients.
    pub frames: u64,
    /// Mean end-to-end inference latency (ms).
    pub mean_latency_ms: f64,
    /// Overall accuracy (%): correct predictions / all frames.
    pub accuracy_pct: f64,
    /// Overall cache hit ratio.
    pub hit_ratio: f64,
    /// Global per-frame latency distribution.
    pub latency: LatencyRecorder,
    /// Exactly-mergeable latency histogram — populated only when the
    /// plan's [`MetricsConfig`](crate::driver::MetricsConfig) opts into
    /// the streaming-quantile mode (fleet-scale sweeps); `None` under the
    /// defaults the committed records regenerate with.
    pub latency_hist: Option<coca_metrics::LatencyHistogram>,
    /// Cache-request response latencies (request sent → cache installed),
    /// the paper's Fig. 10(b) metric.
    pub response_latency: LatencyRecorder,
    /// Per-interval (virtual-time window) hit/latency/accuracy series —
    /// how drift and churn effects become visible over time.
    pub windowed: WindowedSummary,
    /// Per-client summaries — or a single fleet aggregate when the plan's
    /// metrics config turned per-client state off.
    pub per_client: Vec<RunSummary>,
    /// Per-client windowed series, parallel to the fleet's client indices;
    /// empty unless the plan opted in (O(clients × windows) memory).
    pub per_client_windowed: Vec<WindowedSummary>,
    /// Collection-rule accounting summed over clients (CoCa only; zeroed
    /// for methods without collection rules).
    pub absorb: AbsorbStats,
    /// Order-independent digest of every `(client, frame)` consumed. Two
    /// methods run over the same scenario and length must agree exactly —
    /// the cross-method fairness invariant.
    pub frame_digest: u64,
    /// Virtual instant the last event completed.
    pub end_time: SimTime,
}

/// The CoCa protocol as a [`MethodDriver`]: requests/allocations/uploads
/// flow through the generic event loop; frames never query the server
/// mid-inference (CoCa resolves lookups locally).
struct CocaDriver<'a> {
    rt: &'a ModelRuntime,
    server: &'a mut CocaServer,
    clients: &'a mut [CocaClient],
    /// One pooled lookup buffer for the whole fleet: frames execute
    /// sequentially in virtual time, so per-client scratch would be
    /// O(fleet) memory for no benefit.
    scratch: crate::lookup::LookupScratch,
    /// Currently live member count, mirrored into the server's
    /// round-aligned flush watermark at every join/leave.
    live: usize,
}

impl MethodDriver for CocaDriver<'_> {
    type Request = CacheRequest;
    type Alloc = CacheAllocation;
    type Query = NoMsg;
    type Reply = NoMsg;
    type Upload = UpdateUpload;

    fn name(&self) -> &str {
        "CoCa"
    }

    fn cache_request(&mut self, k: usize) -> Option<CacheRequest> {
        Some(self.clients[k].cache_request())
    }

    fn serve_request(&mut self, _k: usize, req: CacheRequest) -> (CacheAllocation, SimDuration) {
        self.server.handle_request(&req)
    }

    fn install(&mut self, k: usize, alloc: CacheAllocation) {
        self.clients[k].install_cache(alloc.cache);
    }

    fn process_frame(&mut self, k: usize, frame: &Frame) -> FrameStep<NoMsg> {
        let res = self.clients[k].process_frame(self.rt, frame, &mut self.scratch);
        FrameStep::Done(FrameOutcome {
            compute: res.latency,
            correct: res.correct,
            hit_point: res.hit_point,
        })
    }

    fn end_round(&mut self, k: usize) -> Option<UpdateUpload> {
        Some(self.clients[k].end_round())
    }

    fn serve_upload(&mut self, _k: usize, upload: UpdateUpload) -> SimDuration {
        // Dispatches on `CocaConfig::merge_mode`: merge now (per-upload)
        // or enqueue for the next request/leave/run-end flush boundary.
        self.server.handle_upload(upload)
    }

    fn on_join(&mut self, _k: usize) {
        self.live += 1;
        self.server.set_flush_watermark(self.live);
    }

    fn on_leave(&mut self, k: usize) {
        // Drop the leaver's allocation; its collected knowledge stays in
        // the global table (collaborative caching keeps what the fleet
        // learned). The remaining clients re-run ACA at their next request,
        // so the freed budget and the post-churn global frequencies
        // re-allocate without any extra protocol step. With
        // `leave_phi_decay < 1` the server additionally ages the global
        // frequency mass: `Φ ← ⌈β·Φ⌉` (off by default).
        self.server.on_client_leave();
        self.clients[k].install_cache(crate::semantic::LocalCache::empty());
        self.live = self.live.saturating_sub(1);
        self.server.set_flush_watermark(self.live);
    }

    fn on_run_end(&mut self) {
        // Queue-and-flush leaves the tail of the run's uploads (those
        // after the final request boundary) pending; drain them so
        // post-run server inspection matches the per-upload pipeline.
        self.server.flush_pending();
    }
}

/// The multi-client CoCa engine.
pub struct Engine {
    scenario: Scenario,
    cfg: EngineConfig,
    server: CocaServer,
    clients: Vec<CocaClient>,
}

impl Engine {
    /// Builds the engine over a scenario.
    pub fn new(scenario: Scenario, mut cfg: EngineConfig) -> Self {
        if cfg.coca.cache_budget_bytes == 0 {
            // Auto budget: 1/8 of the full cache (paper's Fig. 1(a) sweet
            // spot is near 10 %).
            cfg.coca.cache_budget_bytes = scenario
                .rt
                .arch()
                .full_cache_bytes(scenario.rt.num_classes())
                / 8;
        }
        let mut server = CocaServer::new(&scenario.rt, cfg.coca, scenario.seeds());
        server.set_costs(cfg.costs);
        let clients: Vec<CocaClient> = scenario
            .profiles
            .iter()
            .enumerate()
            .map(|(k, p)| {
                CocaClient::new(
                    k as u64,
                    cfg.coca,
                    &scenario.rt,
                    p.clone(),
                    server.base_hit_profile().to_vec(),
                )
            })
            .collect();
        Self {
            scenario,
            cfg,
            server,
            clients,
        }
    }

    /// The underlying scenario.
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// The server (post-run inspection, e.g. the Fig. 2 experiment).
    pub fn server(&self) -> &CocaServer {
        &self.server
    }

    /// Mutable server access — attaching/detaching a durability layer
    /// around a run (see `crate::persist`).
    pub fn server_mut(&mut self) -> &mut CocaServer {
        &mut self.server
    }

    /// Runs every client for the configured number of rounds through the
    /// generic event loop and returns the aggregated report.
    pub fn run(&mut self) -> EngineReport {
        let plan =
            DrivePlan::from_config(&self.cfg.drive_config(), self.scenario.config().num_clients);
        self.run_plan(&plan)
    }

    /// Runs CoCa under an explicit [`DrivePlan`] — the dynamic-scenario
    /// entry point (joins, leaves, link changes).
    pub fn run_plan(&mut self, plan: &DrivePlan) -> EngineReport {
        // The base fleet (everyone without a mid-run join) is live from
        // boot; the round-aligned flush watermark tracks it from there.
        let live = plan
            .members
            .iter()
            .filter(|m| m.join_at_ms.is_none())
            .count();
        self.server.set_flush_watermark(live);
        let mut driver = CocaDriver {
            rt: &self.scenario.rt,
            server: &mut self.server,
            clients: &mut self.clients,
            scratch: crate::lookup::LookupScratch::new(),
            live,
        };
        let mut report = drive_plan(&self.scenario, &mut driver, plan);
        // CoCa-specific accounting the generic loop cannot see.
        let mut absorb = AbsorbStats::default();
        for c in &self.clients {
            absorb.merge(c.absorb_stats());
        }
        report.absorb = absorb;
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coca_model::ModelId;

    fn small_scenario(seed: u64) -> Scenario {
        let mut cfg = ScenarioConfig::new(ModelId::ResNet101, DatasetSpec::ucf101().subset(20));
        cfg.num_clients = 4;
        cfg.seed = seed;
        Scenario::build(cfg)
    }

    fn engine_cfg(rounds: usize) -> EngineConfig {
        let mut coca = CocaConfig::for_model(ModelId::ResNet101);
        coca.round_frames = 120; // keep tests quick
        let mut e = EngineConfig::new(coca);
        e.rounds = rounds;
        e
    }

    #[test]
    fn engine_runs_all_rounds_and_beats_edge_only() {
        let scenario = small_scenario(70);
        let full_ms = scenario.rt.full_compute().as_millis_f64();
        let mut engine = Engine::new(scenario, engine_cfg(4));
        let report = engine.run();
        assert_eq!(report.frames, 4 * 4 * 120);
        assert!(report.hit_ratio > 0.2, "hit ratio {}", report.hit_ratio);
        assert!(
            report.mean_latency_ms < full_ms,
            "mean {} vs edge-only {}",
            report.mean_latency_ms,
            full_ms
        );
        assert!(report.accuracy_pct > 60.0);
        assert_eq!(report.response_latency.count(), 4 * 4);
        assert_eq!(report.per_client.len(), 4);
    }

    #[test]
    fn engine_is_deterministic() {
        let r1 = Engine::new(small_scenario(71), engine_cfg(3)).run();
        let r2 = Engine::new(small_scenario(71), engine_cfg(3)).run();
        assert_eq!(r1.mean_latency_ms, r2.mean_latency_ms);
        assert_eq!(r1.accuracy_pct, r2.accuracy_pct);
        assert_eq!(r1.hit_ratio, r2.hit_ratio);
        assert_eq!(r1.end_time, r2.end_time);
    }

    #[test]
    fn different_seeds_differ() {
        let r1 = Engine::new(small_scenario(72), engine_cfg(2)).run();
        let r2 = Engine::new(small_scenario(73), engine_cfg(2)).run();
        assert_ne!(r1.mean_latency_ms, r2.mean_latency_ms);
    }

    #[test]
    fn scenario_streams_are_replayable() {
        let s = small_scenario(74);
        let a = s.stream(2).take(50);
        let b = s.stream(2).take(50);
        assert_eq!(a, b);
    }

    #[test]
    fn more_clients_increase_response_latency() {
        let mk = |n: usize| {
            let mut cfg = ScenarioConfig::new(ModelId::ResNet101, DatasetSpec::ucf101().subset(20));
            cfg.num_clients = n;
            cfg.seed = 75;
            let mut e = engine_cfg(2);
            e.boot_window_ms = 100.0; // force contention
            Engine::new(Scenario::build(cfg), e).run()
        };
        let small = mk(2);
        let big = mk(12);
        assert!(
            big.response_latency.mean_ms() > small.response_latency.mean_ms(),
            "big {} small {}",
            big.response_latency.mean_ms(),
            small.response_latency.mean_ms()
        );
    }
}
