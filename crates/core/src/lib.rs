//! # coca-core — the CoCa framework
//!
//! The paper's contribution: multi-client collaborative semantic caching
//! for edge inference. Module map (paper § in parentheses):
//!
//! * [`config`] — every threshold and decay the paper defines (Θ, Γ, Δ, α,
//!   β, γ, F, hot-spot mass, recency base) plus ablation toggles.
//! * [`semantic`] — cache entries, activated cache layers, the client's
//!   local cache (§II.3).
//! * [`lookup`] — inference with sequential cache lookups: cross-layer
//!   accumulated cosine similarity (Eq. 1), discriminative score and hit
//!   test (Eq. 2), early exit, virtual-time charging (§II.3, §III).
//! * [`status`] — client status vectors τ (timestamps) and φ (frequencies)
//!   (§IV.C).
//! * [`collect`] — the cache-update table U with rule-1/rule-2 sample
//!   selection and decay β (Eq. 3, §IV.C).
//! * [`global`] — the server's two-dimensional global cache table with
//!   frequency-weighted merging (Eq. 4) and global frequency Φ (Eq. 5)
//!   (§IV.D).
//! * [`aca`] — Adaptive Cache Allocation: hot-spot class scoring (Eq. 10)
//!   and greedy benefit-ordered layer selection under the memory budget
//!   (Algorithm 1, §V).
//! * [`proto`] — serializable client↔server messages with logical wire
//!   sizes (drives both the simulated links and the TCP deployment).
//! * [`persist`] — server durability: checksummed snapshots + a
//!   write-ahead log with CRC-framed records, log rotation, torn-tail
//!   truncation, generation-fallback recovery and deterministic
//!   crash-point fault injection.
//! * [`client`] / [`server`] — the two runtimes (§IV.A workflow).
//! * [`sharded`] — the server state again, behind per-layer sharded
//!   `RwLock`s with `&self` handlers — the networked daemon's concurrent
//!   core (same Eq. 4 primitives, digest-equivalent by contract).
//! * [`driver`] — the **generic virtual-time engine**: the
//!   [`MethodDriver`](driver::MethodDriver) trait any method implements,
//!   and the [`drive`](driver::drive) event loop that prices staggered
//!   boots, link transfers, server FIFO queueing and per-frame server
//!   queries identically for every method (§VI.C/I).
//! * [`engine`] — the shared workload model ([`engine::Scenario`]) and the
//!   CoCa instantiation of the generic engine ([`engine::Engine`]); the
//!   baselines crate plugs its own drivers into the same loop.
//! * [`spec`] — declarative **dynamic scenarios**: a serde-serializable
//!   [`spec::ScenarioSpec`] (base fleet + timeline of join/leave,
//!   popularity-drift and link-change events) that materializes into the
//!   shared `Scenario` plus a [`driver::DrivePlan`], so any workload is
//!   data rather than code.
//! * [`multicell`] — **multi-edge topologies**: N collaborating server
//!   cells over one scenario, with per-cell client homing, priced
//!   periodic peer sync (gossip ring / hub-and-spoke) and `Migrate`
//!   handover; one cell reproduces the legacy engine bit-for-bit.

pub mod aca;
pub mod client;
pub mod collect;
pub mod config;
pub mod driver;
pub mod engine;
pub mod global;
pub mod lookup;
pub mod multicell;
pub mod persist;
pub mod proto;
pub mod semantic;
pub mod server;
pub mod sharded;
pub mod spec;
pub mod status;

pub use aca::{allocate, AcaInputs, AcaOutput};
pub use client::{ClientReport, CocaClient};
pub use config::{CocaConfig, FlushPolicy, MergeMode};
pub use driver::{
    drive, drive_plan, DriveConfig, DrivePlan, FrameOutcome, FrameStep, MemberPlan, MethodDriver,
    MigrationPlan, NoMsg, SyncEmit, TopologyPlan,
};
pub use engine::{Engine, EngineConfig, EngineReport};
pub use global::{GlobalCacheTable, MergeScratch};
pub use lookup::{infer_with_cache, InferenceResult, LookupScratch};
pub use multicell::MultiCellEngine;
pub use persist::{
    CrashFault, CrashPlan, DirStorage, Durability, MemStorage, PersistError, RecoveryInfo,
    Snapshot, SnapshotSource, Storage, WalRecord,
};
pub use semantic::{CacheLayer, LocalCache};
pub use server::{CocaServer, DuplicateClientUpload};
pub use sharded::ShardedServer;
pub use spec::{
    CellSpec, JoinEvent, LeaveEvent, LinkChangeEvent, MigrateEvent, PopularityShift,
    PopularityShiftEvent, ScenarioEvent, ScenarioSpec, SyncMode, TopologySpec,
};
pub use status::ClientStatus;
