//! The CoCa client runtime (§IV.A steps 2–3).
//!
//! Owns everything that lives on one edge device: the installed local
//! cache, the status vectors τ/φ, the cache-update table U, the per-layer
//! hit-ratio estimates R it uploads, and its metrics.

use coca_data::Frame;
use coca_metrics::RunSummary;
use coca_model::{ClientFeatureView, ClientProfile, ModelRuntime};
use serde::{Deserialize, Serialize};

use crate::collect::{absorb_rule, AbsorbRule, UpdateTable};
use crate::config::CocaConfig;
use crate::lookup::{infer_with_cache, InferenceResult, LookupScratch};
use crate::proto::{CacheRequest, UpdateUpload};
use crate::semantic::LocalCache;
use crate::status::ClientStatus;

/// Collection-rule accounting for one client (Fig. 6's absorption ratios).
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct AbsorbStats {
    /// Cache hits observed (rule-1 candidates).
    pub hits: u64,
    /// Rule-1 absorptions (hit and `D_j > Γ`).
    pub reinforced: u64,
    /// Rule-1 absorptions whose predicted class was correct.
    pub reinforced_correct: u64,
    /// Cache misses observed (rule-2 candidates).
    pub misses: u64,
    /// Rule-2 absorptions (miss and margin > Δ).
    pub expanded: u64,
    /// Rule-2 absorptions whose predicted class was correct.
    pub expanded_correct: u64,
}

impl AbsorbStats {
    /// Rule-1 absorption ratio (absorbed / eligible hits).
    pub fn reinforce_ratio(&self) -> f64 {
        if self.hits == 0 {
            0.0
        } else {
            self.reinforced as f64 / self.hits as f64
        }
    }

    /// Rule-2 absorption ratio (absorbed / eligible misses).
    pub fn expand_ratio(&self) -> f64 {
        if self.misses == 0 {
            0.0
        } else {
            self.expanded as f64 / self.misses as f64
        }
    }

    /// Accuracy of rule-1 absorbed samples.
    pub fn reinforce_accuracy(&self) -> Option<f64> {
        (self.reinforced > 0).then(|| self.reinforced_correct as f64 / self.reinforced as f64)
    }

    /// Accuracy of rule-2 absorbed samples.
    pub fn expand_accuracy(&self) -> Option<f64> {
        (self.expanded > 0).then(|| self.expanded_correct as f64 / self.expanded as f64)
    }

    /// Merges another client's counters.
    pub fn merge(&mut self, o: &AbsorbStats) {
        self.hits += o.hits;
        self.reinforced += o.reinforced;
        self.reinforced_correct += o.reinforced_correct;
        self.misses += o.misses;
        self.expanded += o.expanded;
        self.expanded_correct += o.expanded_correct;
    }
}

/// End-of-round report handed to the engine.
#[derive(Debug, Clone)]
pub struct ClientReport {
    /// The upload for the server.
    pub upload: UpdateUpload,
    /// Virtual time the round's frames consumed.
    pub round_time: coca_sim::SimDuration,
}

/// One CoCa edge client.
#[derive(Debug)]
pub struct CocaClient {
    id: u64,
    cfg: CocaConfig,
    profile: ClientProfile,
    view: ClientFeatureView,
    status: ClientStatus,
    update: UpdateTable,
    cache: LocalCache,
    /// Standalone per-layer hit-ratio estimates (ACA's R), EWMA-updated
    /// from measurements; initialized from the server's shared-dataset
    /// profile.
    hit_ratio_est: Vec<f64>,
    /// Per-model-point hit counts within the current round.
    round_hits: Vec<u64>,
    round_frames: u64,
    round: u64,
    absorb: AbsorbStats,
    summary: RunSummary,
}

impl CocaClient {
    /// Builds a client. `initial_hit_profile` is the server's shared-
    /// dataset standalone hit-ratio profile (length = preset cache points).
    pub fn new(
        id: u64,
        cfg: CocaConfig,
        rt: &ModelRuntime,
        profile: ClientProfile,
        initial_hit_profile: Vec<f64>,
    ) -> Self {
        let l = rt.num_cache_points();
        assert_eq!(initial_hit_profile.len(), l, "hit profile length mismatch");
        Self {
            id,
            cfg,
            profile,
            view: ClientFeatureView::new(),
            status: ClientStatus::new(rt.num_classes()),
            update: UpdateTable::new(),
            cache: LocalCache::empty(),
            hit_ratio_est: initial_hit_profile,
            round_hits: vec![0; l],
            round_frames: 0,
            round: 0,
            absorb: AbsorbStats::default(),
            summary: RunSummary::new(l),
        }
    }

    /// Client id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The currently installed cache.
    pub fn cache(&self) -> &LocalCache {
        &self.cache
    }

    /// Accumulated metrics.
    pub fn summary(&self) -> &RunSummary {
        &self.summary
    }

    /// Collection-rule accounting.
    pub fn absorb_stats(&self) -> &AbsorbStats {
        &self.absorb
    }

    /// The status vectors (tests/diagnostics).
    pub fn status(&self) -> &ClientStatus {
        &self.status
    }

    /// Builds the next cache request (§IV.A step 1).
    pub fn cache_request(&self) -> CacheRequest {
        CacheRequest {
            client_id: self.id,
            round: self.round,
            timestamps: self.status.timestamps().to_vec(),
            hit_ratio: self.hit_ratio_est.clone(),
            budget_bytes: self.cfg.cache_budget_bytes as u64,
        }
    }

    /// Installs the cache the server allocated.
    pub fn install_cache(&mut self, cache: LocalCache) {
        self.cache = cache;
    }

    /// Processes one frame: cached inference, status update, collection.
    ///
    /// `scratch` is caller-owned so a driver with many clients keeps ONE
    /// pooled [`LookupScratch`] instead of one per member — frames run
    /// sequentially in virtual time, so a single buffer serves the fleet.
    pub fn process_frame(
        &mut self,
        rt: &ModelRuntime,
        frame: &Frame,
        scratch: &mut LookupScratch,
    ) -> InferenceResult {
        let res = infer_with_cache(
            rt,
            &self.profile,
            frame,
            &self.cache,
            &self.cfg,
            &mut self.view,
            scratch,
        );

        // Status tracks *predicted* classes — the client has no labels.
        self.status.observe(res.predicted);

        // Metrics.
        self.summary.latency.record(res.latency);
        self.summary.accuracy.record(res.correct);
        match res.hit_point {
            Some(p) => {
                self.summary.hits.record_hit(p, res.correct);
                self.round_hits[p] += 1;
                self.absorb.hits += 1;
            }
            None => {
                self.summary.hits.record_miss(res.correct);
                self.absorb.misses += 1;
            }
        }
        self.round_frames += 1;

        // Collection rules (§IV.C).
        let miss_margin = res.full_prediction.as_ref().map(|p| p.margin);
        let hit_score = res.hit_point.map(|_| res.hit_score);
        match absorb_rule(
            hit_score,
            miss_margin,
            self.cfg.gamma_collect,
            self.cfg.delta_collect,
        ) {
            Some(AbsorbRule::Reinforce) => {
                self.absorb.reinforced += 1;
                if res.predicted == frame.class {
                    self.absorb.reinforced_correct += 1;
                }
                // Vectors limited to the point of the cache hit.
                for (point, v) in &res.observed {
                    self.update.absorb(res.predicted, *point, v, self.cfg.beta);
                }
            }
            Some(AbsorbRule::Expand) => {
                self.absorb.expanded += 1;
                if res.predicted == frame.class {
                    self.absorb.expanded_correct += 1;
                }
                // The full model ran: every preset layer's features exist.
                for point in 0..rt.num_cache_points() {
                    let v = rt.semantic_vector(frame, &self.profile, point, &mut self.view);
                    self.update.absorb(res.predicted, point, &v, self.cfg.beta);
                }
            }
            None => {}
        }
        res
    }

    /// Ends the round: refreshes the R estimates from this round's
    /// measurements, snapshots φ and U into an upload, and resets
    /// round-local state.
    pub fn end_round(&mut self) -> UpdateUpload {
        if self.round_frames > 0 {
            // Standalone hit ratios under the paper's deflation hypothesis:
            // a sample hitting at point b would also hit at any deeper
            // point, so standalone R_j = cumulative hit fraction up to j.
            // Only activated points produce measurements; estimates for the
            // others keep their previous value.
            let activated = self.cache.activated_points();
            let mut cumulative = 0.0f64;
            for &p in &activated {
                cumulative += self.round_hits[p] as f64 / self.round_frames as f64;
                let a = self.cfg.hit_ratio_ewma_alpha;
                self.hit_ratio_est[p] = a * cumulative + (1.0 - a) * self.hit_ratio_est[p];
            }
        }
        let mut table = self.update.take();
        // Under a quantized wire config, snap every collected vector onto
        // the precision's grid before upload: the f32 values shipped are
        // exactly the dequantized codes, and `wire_bytes` prices the
        // quantized payload. F32 (the default) is untouched.
        table.quantize_in_place(self.cfg.precision);
        let upload = UpdateUpload {
            client_id: self.id,
            round: self.round,
            table,
            frequency: self.status.frequency().to_vec(),
            precision: self.cfg.precision,
        };
        self.status.reset_round();
        self.round_hits.iter_mut().for_each(|h| *h = 0);
        self.round_frames = 0;
        self.round += 1;
        upload
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coca_data::distribution::uniform_weights;
    use coca_data::{DatasetSpec, StreamConfig, StreamGenerator};
    use coca_model::ModelId;
    use coca_sim::SeedTree;

    fn setup() -> (ModelRuntime, CocaClient, StreamGenerator) {
        let dataset = DatasetSpec::ucf101().subset(20);
        let seeds = SeedTree::new(50);
        let rt = ModelRuntime::new(ModelId::ResNet101, &dataset, &seeds);
        let profile = ClientProfile::new(0, 0.2, 0.7, &seeds);
        let cfg = CocaConfig::for_model(ModelId::ResNet101);
        let client = CocaClient::new(0, cfg, &rt, profile, vec![0.1; rt.num_cache_points()]);
        let stream = StreamGenerator::new(
            StreamConfig::new(uniform_weights(20), 16.0),
            &SeedTree::new(51),
        );
        (rt, client, stream)
    }

    /// A center cache over the given points.
    fn center_cache(rt: &ModelRuntime, points: &[usize]) -> LocalCache {
        let layers = points
            .iter()
            .map(|&p| {
                let mut l = crate::semantic::CacheLayer::new(p);
                for c in 0..rt.num_classes() {
                    l.insert(c, rt.universe().global_center(p, c).to_vec());
                }
                l
            })
            .collect();
        LocalCache::from_layers(layers)
    }

    #[test]
    fn frames_update_status_and_metrics() {
        let (rt, mut client, mut stream) = setup();
        client.install_cache(center_cache(&rt, &[10, 25, 33]));
        let mut scratch = LookupScratch::new();
        for f in stream.take(200) {
            client.process_frame(&rt, &f, &mut scratch);
        }
        assert_eq!(client.summary().accuracy.total(), 200);
        assert_eq!(client.status().round_total(), 200);
        assert!(client.summary().hits.hit_ratio() > 0.3);
        assert!(client.absorb_stats().hits > 0);
    }

    #[test]
    fn end_round_snapshots_and_resets() {
        let (rt, mut client, mut stream) = setup();
        client.install_cache(center_cache(&rt, &[15, 30]));
        let mut scratch = LookupScratch::new();
        for f in stream.take(150) {
            client.process_frame(&rt, &f, &mut scratch);
        }
        let phi_before = client.status().frequency().to_vec();
        let upload = client.end_round();
        assert_eq!(upload.frequency, phi_before);
        assert_eq!(upload.round, 0);
        assert_eq!(client.status().round_total(), 0);
        // Second round's request carries the updated round counter.
        assert_eq!(client.cache_request().round, 1);
    }

    #[test]
    fn collection_populates_update_table() {
        let (rt, mut client, mut stream) = setup();
        client.install_cache(center_cache(&rt, &[10, 20, 30]));
        let mut scratch = LookupScratch::new();
        for f in stream.take(300) {
            client.process_frame(&rt, &f, &mut scratch);
        }
        let upload = client.end_round();
        assert!(
            !upload.table.is_empty(),
            "300 frames should absorb at least one sample (reinforced {} expanded {})",
            client.absorb_stats().reinforced,
            client.absorb_stats().expanded,
        );
    }

    #[test]
    fn hit_ratio_estimates_move_toward_measurements() {
        let (rt, mut client, mut stream) = setup();
        client.install_cache(center_cache(&rt, &[10, 25]));
        let before = client.cache_request().hit_ratio.clone();
        let mut scratch = LookupScratch::new();
        for f in stream.take(300) {
            client.process_frame(&rt, &f, &mut scratch);
        }
        let _ = client.end_round();
        let after = client.cache_request().hit_ratio.clone();
        // Activated points were measured (moved); untouched points kept.
        assert_ne!(before[10], after[10]);
        assert_eq!(before[0], after[0]);
        // Deeper activated point has ≥ the shallow one (cumulative).
        assert!(after[25] + 1e-12 >= after[10] * 0.999);
    }

    #[test]
    fn empty_cache_still_collects_expansions() {
        let (rt, mut client, mut stream) = setup();
        // No cache installed: every frame misses; confident ones absorb.
        let mut scratch = LookupScratch::new();
        for f in stream.take(200) {
            let r = client.process_frame(&rt, &f, &mut scratch);
            assert!(!r.is_hit());
        }
        assert!(client.absorb_stats().expanded > 0);
        assert_eq!(client.absorb_stats().hits, 0);
    }
}
