//! The client's local semantic cache.
//!
//! A local cache is a set of *activated* cache layers; each activated layer
//! holds one unit-norm semantic-center entry per hot-spot class. In CoCa
//! the server extracts these as a sub-table of its global cache (§IV.B);
//! baselines fill them by other policies.

use serde::{Deserialize, Serialize};

/// One activated cache layer.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CacheLayer {
    /// Which preset cache point of the model this layer occupies.
    pub point: usize,
    /// Cached classes, parallel to `vectors`.
    pub classes: Vec<usize>,
    /// Unit-norm semantic centers, parallel to `classes`.
    pub vectors: Vec<Vec<f32>>,
}

impl CacheLayer {
    /// An empty activated layer at model point `point`.
    pub fn new(point: usize) -> Self {
        Self {
            point,
            classes: Vec::new(),
            vectors: Vec::new(),
        }
    }

    /// Adds (or replaces) the entry for `class`.
    pub fn insert(&mut self, class: usize, vector: Vec<f32>) {
        debug_assert!(
            (coca_math::l2_norm(&vector) - 1.0).abs() < 1e-3,
            "cache entries must be unit-norm"
        );
        if let Some(i) = self.classes.iter().position(|&c| c == class) {
            self.vectors[i] = vector;
        } else {
            self.classes.push(class);
            self.vectors.push(vector);
        }
    }

    /// Removes the entry for `class` if present; returns true if removed.
    pub fn remove(&mut self, class: usize) -> bool {
        if let Some(i) = self.classes.iter().position(|&c| c == class) {
            self.classes.swap_remove(i);
            self.vectors.swap_remove(i);
            true
        } else {
            false
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// True iff the layer holds no entries.
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }

    /// Bytes occupied by this layer's entries (dense f32).
    pub fn bytes(&self) -> usize {
        self.vectors.iter().map(|v| v.len() * 4).sum()
    }
}

/// A client's local cache: activated layers in depth order.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct LocalCache {
    layers: Vec<CacheLayer>,
}

impl LocalCache {
    /// An empty cache (inference degenerates to Edge-Only).
    pub fn empty() -> Self {
        Self { layers: Vec::new() }
    }

    /// Builds from layers; they are sorted by model point and must not
    /// contain duplicates.
    ///
    /// # Panics
    /// Panics on duplicate points.
    pub fn from_layers(mut layers: Vec<CacheLayer>) -> Self {
        layers.sort_by_key(|l| l.point);
        for w in layers.windows(2) {
            assert_ne!(
                w[0].point, w[1].point,
                "duplicate cache layer at point {}",
                w[0].point
            );
        }
        Self { layers }
    }

    /// Activated layers, shallow to deep.
    pub fn layers(&self) -> &[CacheLayer] {
        &self.layers
    }

    /// Mutable access (used by replacement-policy baselines).
    pub fn layers_mut(&mut self) -> &mut [CacheLayer] {
        &mut self.layers
    }

    /// Number of activated layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// True iff no layer is activated or all layers are empty.
    pub fn is_empty(&self) -> bool {
        self.layers.iter().all(|l| l.is_empty())
    }

    /// Total bytes of all entries.
    pub fn total_bytes(&self) -> usize {
        self.layers.iter().map(|l| l.bytes()).sum()
    }

    /// The union of cached classes across layers (sorted, deduplicated).
    pub fn cached_classes(&self) -> Vec<usize> {
        let mut all: Vec<usize> = self
            .layers
            .iter()
            .flat_map(|l| l.classes.iter().copied())
            .collect();
        all.sort_unstable();
        all.dedup();
        all
    }

    /// The activated model points, shallow to deep.
    pub fn activated_points(&self) -> Vec<usize> {
        self.layers.iter().map(|l| l.point).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit(dim: usize, hot: usize) -> Vec<f32> {
        let mut v = vec![0.0; dim];
        v[hot % dim] = 1.0;
        v
    }

    #[test]
    fn insert_replace_remove() {
        let mut l = CacheLayer::new(3);
        l.insert(7, unit(4, 0));
        l.insert(9, unit(4, 1));
        assert_eq!(l.len(), 2);
        l.insert(7, unit(4, 2)); // replace
        assert_eq!(l.len(), 2);
        assert_eq!(l.vectors[0], unit(4, 2));
        assert!(l.remove(9));
        assert!(!l.remove(9));
        assert_eq!(l.len(), 1);
        assert_eq!(l.bytes(), 16);
    }

    #[test]
    fn from_layers_sorts_by_point() {
        let cache = LocalCache::from_layers(vec![CacheLayer::new(5), CacheLayer::new(1)]);
        assert_eq!(cache.activated_points(), vec![1, 5]);
        assert!(cache.is_empty());
        assert_eq!(cache.num_layers(), 2);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_points_panic() {
        let _ = LocalCache::from_layers(vec![CacheLayer::new(2), CacheLayer::new(2)]);
    }

    #[test]
    fn cached_classes_dedups_across_layers() {
        let mut a = CacheLayer::new(0);
        a.insert(3, unit(2, 0));
        a.insert(1, unit(2, 1));
        let mut b = CacheLayer::new(4);
        b.insert(1, unit(2, 0));
        b.insert(2, unit(2, 1));
        let cache = LocalCache::from_layers(vec![a, b]);
        assert_eq!(cache.cached_classes(), vec![1, 2, 3]);
        assert_eq!(cache.total_bytes(), 4 * 8);
    }
}
