//! The client's local semantic cache.
//!
//! A local cache is a set of *activated* cache layers; each activated layer
//! holds one unit-norm semantic-center entry per hot-spot class. In CoCa
//! the server extracts these as a sub-table of its global cache (§IV.B);
//! baselines fill them by other policies.
//!
//! Entries live in a contiguous [`VectorStore`] (one flat row-major buffer
//! per layer) so the per-frame Eq. 1/2 scan streams through cache lines;
//! the unit-norm contract is `debug_assert`ed once at insertion, which is
//! what lets the lookup use the norm-free `dot_unit` kernel.

use coca_math::{Precision, VectorStore};
use serde::Serialize;

/// One activated cache layer.
#[derive(Debug, Clone, Serialize)]
pub struct CacheLayer {
    /// Which preset cache point of the model this layer occupies.
    pub point: usize,
    /// Cached classes, parallel to the rows of `vectors`.
    pub classes: Vec<usize>,
    /// Unit-norm semantic centers, one store row per entry of `classes`.
    pub vectors: VectorStore,
}

// Deserialization is the one entry point that bypasses [`CacheLayer::
// insert`]'s debug-time unit-norm assertion (allocations arrive over the
// wire in the TCP deployment), and the norm-free lookup kernel would
// silently mis-score a non-unit entry where the seed's `cosine` used to
// renormalize it. So the wire boundary enforces the contract for real:
// rows must be unit-norm (or zero — degenerate entries score 0) and
// parallel to `classes`.
impl serde::Deserialize for CacheLayer {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let serde::Value::Object(m) = v else {
            return Err(serde::Error::custom(format!(
                "expected object for CacheLayer, got {}",
                v.kind()
            )));
        };
        let point: usize = serde::__field(m, "point")?;
        let classes: Vec<usize> = serde::__field(m, "classes")?;
        let vectors: VectorStore = serde::__field(m, "vectors")?;
        if vectors.rows() != classes.len() {
            return Err(serde::Error::custom(format!(
                "CacheLayer: {} classes vs {} vector rows",
                classes.len(),
                vectors.rows()
            )));
        }
        for (i, row) in vectors.iter_rows().enumerate() {
            if !coca_math::is_unit(row, 1e-3) {
                return Err(serde::Error::custom(format!(
                    "CacheLayer: row {i} (class {}) is not unit-norm",
                    classes[i]
                )));
            }
        }
        Ok(Self {
            point,
            classes,
            vectors,
        })
    }
}

impl CacheLayer {
    /// An empty activated layer at model point `point`.
    pub fn new(point: usize) -> Self {
        Self {
            point,
            classes: Vec::new(),
            vectors: VectorStore::empty(),
        }
    }

    /// Adds (or replaces) the entry for `class`.
    pub fn insert(&mut self, class: usize, vector: Vec<f32>) {
        debug_assert!(
            coca_math::is_unit(&vector, 1e-3),
            "cache entries must be unit-norm"
        );
        if let Some(i) = self.classes.iter().position(|&c| c == class) {
            self.vectors.set_row(i, &vector);
        } else {
            self.classes.push(class);
            self.vectors.push_row(&vector);
        }
    }

    /// Removes the entry for `class` if present; returns true if removed.
    pub fn remove(&mut self, class: usize) -> bool {
        if let Some(i) = self.classes.iter().position(|&c| c == class) {
            self.classes.swap_remove(i);
            self.vectors.swap_remove_row(i);
            true
        } else {
            false
        }
    }

    /// The cached center for `class`, if present.
    pub fn vector_for(&self, class: usize) -> Option<&[f32]> {
        self.classes
            .iter()
            .position(|&c| c == class)
            .map(|i| self.vectors.row(i))
    }

    /// Iterates `(class, center)` entries in row order.
    pub fn entries(&self) -> impl Iterator<Item = (usize, &[f32])> {
        self.classes.iter().copied().zip(self.vectors.iter_rows())
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// True iff the layer holds no entries.
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }

    /// Bytes occupied by this layer's entries (dense f32).
    pub fn bytes(&self) -> usize {
        self.vectors.bytes()
    }

    /// Bytes this layer's entries occupy when shipped at `precision`
    /// (what a quantized allocation frame prices on the wire).
    pub fn bytes_at(&self, precision: Precision) -> usize {
        precision.payload_bytes(self.classes.len(), self.vectors.dim())
    }
}

/// A client's local cache: activated layers in depth order.
#[derive(Debug, Clone, Default, Serialize)]
pub struct LocalCache {
    layers: Vec<CacheLayer>,
}

// The derived impl would accept any `Vec<CacheLayer>` verbatim, letting a
// wire allocation frame smuggle duplicate or unsorted layer points past
// the [`LocalCache::from_layers`] invariant (which `panic`s — the right
// response to a programming error, the wrong one to hostile bytes). The
// wire boundary instead canonicalizes the order and turns duplicates
// into a decode error.
impl serde::Deserialize for LocalCache {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let serde::Value::Object(m) = v else {
            return Err(serde::Error::custom(format!(
                "expected object for LocalCache, got {}",
                v.kind()
            )));
        };
        let mut layers: Vec<CacheLayer> = serde::__field(m, "layers")?;
        layers.sort_by_key(|l| l.point);
        for w in layers.windows(2) {
            if w[0].point == w[1].point {
                return Err(serde::Error::custom(format!(
                    "LocalCache: duplicate cache layer at point {}",
                    w[0].point
                )));
            }
        }
        Ok(Self { layers })
    }
}

impl LocalCache {
    /// An empty cache (inference degenerates to Edge-Only).
    pub fn empty() -> Self {
        Self { layers: Vec::new() }
    }

    /// Builds from layers; they are sorted by model point and must not
    /// contain duplicates.
    ///
    /// # Panics
    /// Panics on duplicate points.
    pub fn from_layers(mut layers: Vec<CacheLayer>) -> Self {
        layers.sort_by_key(|l| l.point);
        for w in layers.windows(2) {
            assert_ne!(
                w[0].point, w[1].point,
                "duplicate cache layer at point {}",
                w[0].point
            );
        }
        Self { layers }
    }

    /// Activated layers, shallow to deep.
    pub fn layers(&self) -> &[CacheLayer] {
        &self.layers
    }

    /// Mutable access (used by replacement-policy baselines).
    pub fn layers_mut(&mut self) -> &mut [CacheLayer] {
        &mut self.layers
    }

    /// Number of activated layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// True iff no layer is activated or all layers are empty.
    pub fn is_empty(&self) -> bool {
        self.layers.iter().all(|l| l.is_empty())
    }

    /// Total bytes of all entries.
    pub fn total_bytes(&self) -> usize {
        self.layers.iter().map(|l| l.bytes()).sum()
    }

    /// Total bytes of all entries when shipped at `precision`
    /// ([`Precision::F32`] reproduces [`LocalCache::total_bytes`]).
    pub fn total_bytes_at(&self, precision: Precision) -> usize {
        self.layers.iter().map(|l| l.bytes_at(precision)).sum()
    }

    /// The union of cached classes across layers (sorted, deduplicated).
    pub fn cached_classes(&self) -> Vec<usize> {
        let mut all: Vec<usize> = self
            .layers
            .iter()
            .flat_map(|l| l.classes.iter().copied())
            .collect();
        all.sort_unstable();
        all.dedup();
        all
    }

    /// The activated model points, shallow to deep.
    pub fn activated_points(&self) -> Vec<usize> {
        self.layers.iter().map(|l| l.point).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit(dim: usize, hot: usize) -> Vec<f32> {
        let mut v = vec![0.0; dim];
        v[hot % dim] = 1.0;
        v
    }

    #[test]
    fn insert_replace_remove() {
        let mut l = CacheLayer::new(3);
        l.insert(7, unit(4, 0));
        l.insert(9, unit(4, 1));
        assert_eq!(l.len(), 2);
        l.insert(7, unit(4, 2)); // replace
        assert_eq!(l.len(), 2);
        assert_eq!(l.vector_for(7).unwrap(), unit(4, 2).as_slice());
        assert!(l.remove(9));
        assert!(!l.remove(9));
        assert_eq!(l.len(), 1);
        assert_eq!(l.bytes(), 16);
    }

    #[test]
    fn entries_stay_parallel_after_removal() {
        let mut l = CacheLayer::new(0);
        l.insert(1, unit(3, 0));
        l.insert(2, unit(3, 1));
        l.insert(3, unit(3, 2));
        assert!(l.remove(1)); // swap-removes: class 3's row moves to slot 0
        let pairs: Vec<(usize, Vec<f32>)> = l.entries().map(|(c, v)| (c, v.to_vec())).collect();
        assert_eq!(pairs.len(), 2);
        for (c, v) in pairs {
            assert_eq!(l.vector_for(c).unwrap(), v.as_slice());
        }
        assert_eq!(l.vector_for(3).unwrap(), unit(3, 2).as_slice());
    }

    #[test]
    fn layer_serde_round_trips_flat() {
        let mut l = CacheLayer::new(5);
        l.insert(2, unit(4, 1));
        l.insert(8, unit(4, 3));
        let json = serde_json::to_string(&l).unwrap();
        assert!(json.contains("\"dim\":4"), "flat-buffer encode: {json}");
        let back: CacheLayer = serde_json::from_str(&json).unwrap();
        assert_eq!(back.point, 5);
        assert_eq!(back.classes, l.classes);
        assert_eq!(back.vector_for(8).unwrap(), unit(4, 3).as_slice());
    }

    #[test]
    fn layer_deserialize_enforces_the_unit_contract() {
        // Non-unit row: the seed's cosine would have renormalized it, the
        // norm-free kernel cannot — the wire boundary must reject it.
        let bad = r#"{"point":1,"classes":[7],"vectors":{"dim":2,"data":[3.0,4.0]}}"#;
        assert!(serde_json::from_str::<CacheLayer>(bad).is_err());
        // Classes/rows mismatch.
        let ragged = r#"{"point":1,"classes":[7,9],"vectors":{"dim":2,"data":[1.0,0.0]}}"#;
        assert!(serde_json::from_str::<CacheLayer>(ragged).is_err());
        // Zero rows are degenerate-but-legal (they score 0, as cosine did).
        let zero = r#"{"point":1,"classes":[7],"vectors":{"dim":2,"data":[0.0,0.0]}}"#;
        assert!(serde_json::from_str::<CacheLayer>(zero).is_ok());
    }

    #[test]
    fn from_layers_sorts_by_point() {
        let cache = LocalCache::from_layers(vec![CacheLayer::new(5), CacheLayer::new(1)]);
        assert_eq!(cache.activated_points(), vec![1, 5]);
        assert!(cache.is_empty());
        assert_eq!(cache.num_layers(), 2);
    }

    #[test]
    fn cache_deserialize_sorts_and_rejects_duplicate_points() {
        // Unsorted wire layers are canonicalized, not trusted.
        let unsorted = r#"{"layers":[
            {"point":5,"classes":[],"vectors":{"dim":0,"data":[]}},
            {"point":1,"classes":[],"vectors":{"dim":0,"data":[]}}]}"#;
        let cache: LocalCache = serde_json::from_str(unsorted).unwrap();
        assert_eq!(cache.activated_points(), vec![1, 5]);
        // A duplicate point is a decode error — `from_layers` panics on
        // this invariant violation, and hostile bytes must never panic.
        let dup = r#"{"layers":[
            {"point":2,"classes":[],"vectors":{"dim":0,"data":[]}},
            {"point":2,"classes":[],"vectors":{"dim":0,"data":[]}}]}"#;
        assert!(serde_json::from_str::<LocalCache>(dup).is_err());
        let not_obj = "[1,2,3]";
        assert!(serde_json::from_str::<LocalCache>(not_obj).is_err());
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_points_panic() {
        let _ = LocalCache::from_layers(vec![CacheLayer::new(2), CacheLayer::new(2)]);
    }

    #[test]
    fn cached_classes_dedups_across_layers() {
        let mut a = CacheLayer::new(0);
        a.insert(3, unit(2, 0));
        a.insert(1, unit(2, 1));
        let mut b = CacheLayer::new(4);
        b.insert(1, unit(2, 0));
        b.insert(2, unit(2, 1));
        let cache = LocalCache::from_layers(vec![a, b]);
        assert_eq!(cache.cached_classes(), vec![1, 2, 3]);
        assert_eq!(cache.total_bytes(), 4 * 8);
    }
}
