//! The CoCa edge server (§IV.A, §IV.B, §IV.D).
//!
//! Maintains the global cache table and global class frequencies, seeds
//! both from a shared dataset, answers cache requests by running ACA and
//! extracting a personalized sub-table, and merges client uploads.

use std::collections::BTreeMap;

use coca_data::distribution::uniform_weights;
use coca_data::{StreamConfig, StreamGenerator};
use coca_math::Precision;
use coca_model::{ClientFeatureView, ClientProfile, ModelRuntime};
use coca_net::WireSize;
use coca_sim::{SeedTree, SimDuration};
use rand::Rng;

use crate::aca::{allocate, AcaInputs, AcaOutput};
use crate::collect::UpdateTable;
use crate::config::{CocaConfig, FlushPolicy, MergeMode};
use crate::global::{GlobalCacheTable, MergeScratch};
use crate::lookup::{infer_with_cache, LookupScratch};
use crate::persist::{Durability, PersistError, RecoveryInfo, Snapshot, WalRecord};
use crate::proto::{CacheAllocation, CacheRequest, PeerDelta, PeerDeltaEntry, UpdateUpload};
use crate::semantic::{CacheLayer, LocalCache};
use crate::status::ClientStatus;

/// Error from [`CocaServer::handle_updates_batch`]: one batch held two
/// uploads from the same client. A batch is one round's contributions —
/// a client uploads once per round — and the batched pass weights each
/// client's Eq. 4 contribution by its prefix Φ, so silently accepting a
/// duplicate would double-weight that client's φ. Deterministic (the
/// smallest offending client id is reported) and raised before any state
/// changes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DuplicateClientUpload {
    /// The client id that appears more than once in the batch.
    pub client_id: u64,
}

impl std::fmt::Display for DuplicateClientUpload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "duplicate upload for client {} in one batch (one upload per client per round)",
            self.client_id
        )
    }
}

impl std::error::Error for DuplicateClientUpload {}

/// Samples per class used to seed the global cache from the shared dataset.
const SEED_SAMPLES_PER_CLASS: usize = 6;

/// Frames used to profile the shared-dataset standalone hit-ratio curve.
const PROFILE_FRAMES: usize = 600;

/// Server-side service-time model (virtual milliseconds): Python-grade
/// allocation and merge costs on the paper's edge server, proportional to
/// the table cells touched.
#[derive(Debug, Clone, Copy)]
pub struct ServiceCostModel {
    /// Fixed cost of handling a cache request (ACA + bookkeeping).
    pub alloc_base_ms: f64,
    /// Additional cost per kilobyte of extracted cache.
    pub alloc_per_kb_ms: f64,
    /// Fixed cost of merging one upload.
    pub update_base_ms: f64,
    /// Additional cost per kilobyte of uploaded table.
    pub update_per_kb_ms: f64,
}

impl Default for ServiceCostModel {
    fn default() -> Self {
        Self {
            alloc_base_ms: 5.0,
            alloc_per_kb_ms: 0.012,
            update_base_ms: 2.5,
            update_per_kb_ms: 0.02,
        }
    }
}

/// The edge server.
#[derive(Debug)]
pub struct CocaServer {
    cfg: CocaConfig,
    global: GlobalCacheTable,
    /// Υ per layer, in ms (model compute only — paper §V.A).
    saved_ms: Vec<f64>,
    /// m_j — bytes per entry per layer.
    entry_bytes: Vec<usize>,
    /// Shared-dataset standalone hit-ratio profile (initial R for clients).
    base_hit_profile: Vec<f64>,
    /// Static allocation reused when dynamic cache allocation is disabled
    /// (the Normal/GCU ablation arms).
    static_alloc: Option<AcaOutput>,
    costs: ServiceCostModel,
    /// Reusable merge buffers: the per-round merge phase allocates
    /// nothing once these are warm.
    scratch: MergeScratch,
    /// Uploads queued under [`MergeMode::QueueAndFlush`], in FIFO arrival
    /// order — exactly the order the per-upload pipeline would have
    /// merged them, which is what keeps the two modes byte-identical.
    /// Always empty under [`MergeMode::PerUpload`].
    pending: Vec<UpdateUpload>,
    /// Live-fleet size under [`FlushPolicy::RoundAligned`]: once
    /// `pending.len()` reaches this watermark the queue drains in one
    /// fleet-sized batch. `0` (the default, and any run that never calls
    /// [`CocaServer::set_flush_watermark`]) disables watermark draining,
    /// leaving the boundary flushes in charge.
    flush_watermark: usize,
    /// Server-side mirror of the last τ/φ each client reported —
    /// observational state (it feeds no allocation or merge decision) but
    /// part of the durability contract: a recovered server knows what a
    /// crashed one knew about its fleet. Departed clients keep their last
    /// reported entry (the leave protocol carries no client id).
    clients: BTreeMap<u64, ClientStatus>,
    /// Snapshot + WAL persistence, when attached. `None` (the default)
    /// makes every logging hook a no-op — simulation runs pay nothing.
    durability: Option<Durability>,
    /// This server's cell id in a multi-edge topology (0 = the classic
    /// single server; see [`CocaServer::set_cell_id`]).
    cell_id: u32,
    /// Per-origin merged Φ mass: how much frequency each cell's clients
    /// contributed to *this* table, cumulatively — local uploads under
    /// [`Self::cell_id`], peer deltas under their entry's origin. The
    /// provenance groundwork for centroid content retirement: with
    /// per-origin mass known, `leave_phi_decay` can age a leaver's
    /// *vector* contribution, not just its frequency. Rebuilt by WAL
    /// replay (recorded inside the replayed merge bodies), deliberately
    /// outside [`Snapshot`] — its shape is load-bearing for committed
    /// recovery records, so a recovery only restores the post-snapshot
    /// portion of these observational counters.
    origin_freq: BTreeMap<u32, Vec<u64>>,
    /// Peer-sync send cursors: for each peer cell, the per-origin Φ mass
    /// already shipped to it. [`CocaServer::export_delta`] sends only the
    /// growth past the cursor, so single-inbound-path topologies (the
    /// gossip ring, the hub-and-spoke star) deliver each origin's mass to
    /// each cell exactly once — Φ is conserved fleet-wide.
    sent_to: BTreeMap<u32, BTreeMap<u32, Vec<u64>>>,
}

/// Seeds a global cache table from the shared dataset: averages a few
/// curated clean (undrifted) samples per class per layer — the paper's
/// "server generates the initial cache using the global shared dataset".
///
/// Shared between the CoCa server and cache baselines (SMTM and the
/// replacement-policy harness start from the same initial centroids, so
/// method comparisons isolate the *policy*, not the initialization).
pub fn seed_global_table(rt: &ModelRuntime, seeds: &SeedTree) -> GlobalCacheTable {
    let l = rt.num_cache_points();
    let classes = rt.num_classes();
    let mut global = GlobalCacheTable::new(classes, l);
    let shared_seeds = seeds.child("server-shared");
    let shared_profile = ClientProfile::new(u64::MAX, 0.0, 1.0, &shared_seeds);
    let mut view = ClientFeatureView::new();
    let mut frame_rng = shared_seeds.rng_for("seed-frames");
    let mut seq = 0u64;
    for class in 0..classes {
        let mut sums: Vec<Vec<f32>> = (0..l).map(|j| vec![0.0f32; rt.feature_dim(j)]).collect();
        for s in 0..SEED_SAMPLES_PER_CLASS {
            // Curated clean samples: full class-signal visibility, so
            // seeded centers carry undiminished class components.
            let difficulty = 0.32 + 0.03 * s as f32;
            let frame = coca_data::Frame {
                seq,
                class,
                run_pos: 0,
                difficulty,
                run_difficulty: difficulty,
                frame_seed: frame_rng.gen(),
                run_seed: frame_rng.gen(),
            };
            seq += 1;
            for (j, sum) in sums.iter_mut().enumerate() {
                let v = rt.semantic_vector(&frame, &shared_profile, j, &mut view);
                coca_math::vector::axpy(1.0, &v, sum);
            }
        }
        for (j, sum) in sums.into_iter().enumerate() {
            global.set(class, j, sum);
        }
    }
    // Frequency prior: the shared dataset is balanced.
    global.seed_frequency(&vec![SEED_SAMPLES_PER_CLASS as u64; classes]);
    global
}

/// Profiles the standalone (cumulative) hit-ratio curve of a fully
/// populated cache on the shared dataset — the initial R estimates.
pub fn profile_hit_ratios(
    rt: &ModelRuntime,
    cfg: &CocaConfig,
    global: &GlobalCacheTable,
    seeds: &SeedTree,
) -> Vec<f64> {
    let l = rt.num_cache_points();
    let classes = rt.num_classes();
    let shared_seeds = seeds.child("server-shared");
    let shared_profile = ClientProfile::new(u64::MAX, 0.0, 1.0, &shared_seeds);
    let mut view = ClientFeatureView::new();
    let mut scratch = LookupScratch::new();
    let all_layers: Vec<usize> = (0..l).collect();
    let all_classes: Vec<usize> = (0..classes).collect();
    let profile_cache = global.extract(&all_layers, &all_classes);
    let mut hits = vec![0u64; l];
    let mut prof_gen = StreamGenerator::new(
        StreamConfig::new(uniform_weights(classes), 16.0),
        &shared_seeds.child("profile-stream"),
    );
    for _ in 0..PROFILE_FRAMES {
        let f = prof_gen.next_frame();
        let r = infer_with_cache(
            rt,
            &shared_profile,
            &f,
            &profile_cache,
            cfg,
            &mut view,
            &mut scratch,
        );
        if let Some(p) = r.hit_point {
            hits[p] += 1;
        }
    }
    let mut base_hit_profile = Vec::with_capacity(l);
    let mut cumulative = 0.0f64;
    for &h in &hits {
        // A ratio, so never above 1; the clamp guards against the float
        // accumulation creeping past it when every profile frame hits.
        cumulative = (cumulative + h as f64 / PROFILE_FRAMES as f64).min(1.0);
        base_hit_profile.push(cumulative);
    }
    base_hit_profile
}

impl CocaServer {
    /// Builds the server: seeds the global cache and frequency prior from
    /// the shared dataset and profiles the initial hit-ratio curve.
    pub fn new(rt: &ModelRuntime, cfg: CocaConfig, seeds: &SeedTree) -> Self {
        cfg.validate().expect("invalid CoCa configuration");
        let l = rt.num_cache_points();
        let mut global = seed_global_table(rt, seeds);
        // Seeding always builds f32 centers (the record-regeneration
        // reference); a quantized config re-encodes them once here, so
        // the hit-ratio profile below already reflects codec error.
        global.convert_precision(cfg.precision);
        let saved_ms: Vec<f64> = (0..l)
            .map(|j| rt.saved_if_hit_at(j).as_millis_f64())
            .collect();
        let entry_bytes: Vec<usize> = (0..l).map(|j| rt.entry_bytes(j)).collect();
        let base_hit_profile = profile_hit_ratios(rt, &cfg, &global, seeds);

        Self {
            cfg,
            global,
            saved_ms,
            entry_bytes,
            base_hit_profile,
            static_alloc: None,
            costs: ServiceCostModel::default(),
            scratch: MergeScratch::new(),
            pending: Vec::new(),
            flush_watermark: 0,
            clients: BTreeMap::new(),
            durability: None,
            cell_id: 0,
            origin_freq: BTreeMap::new(),
            sent_to: BTreeMap::new(),
        }
    }

    /// Names this server's cell in a multi-edge topology. Local uploads'
    /// Φ is attributed to this id in the provenance counts, and
    /// [`CocaServer::export_delta`] stamps it as `from_cell`. The default
    /// 0 is correct for the classic single-server deployment.
    pub fn set_cell_id(&mut self, id: u32) {
        self.cell_id = id;
    }

    /// This server's cell id (0 unless [`CocaServer::set_cell_id`] ran).
    pub fn cell_id(&self) -> u32 {
        self.cell_id
    }

    /// Per-origin merged Φ mass (cell id → cumulative per-class counts):
    /// which cell's clients contributed how much of this table's
    /// frequency. Observational groundwork for centroid content
    /// retirement — see the field docs on `origin_freq`.
    pub fn merge_provenance(&self) -> &BTreeMap<u32, Vec<u64>> {
        &self.origin_freq
    }

    /// Sets the round-aligned flush watermark to the current live-fleet
    /// size. The engine calls this at boot and at every join/leave so a
    /// full round's uploads — exactly one per live member in the steady
    /// state — trigger one fleet-sized batched drain. Ignored unless
    /// [`CocaConfig::flush_policy`] is [`FlushPolicy::RoundAligned`].
    pub fn set_flush_watermark(&mut self, live_members: usize) {
        self.wal(&WalRecord::Watermark(live_members));
        self.watermark_inner(live_members);
    }

    fn watermark_inner(&mut self, live_members: usize) {
        self.flush_watermark = live_members;
        // A shrinking fleet can leave the queue already at (or past) the
        // new watermark; drain immediately so the policy's "one round's
        // uploads per drain" cadence is restored.
        self.drain_if_at_watermark();
    }

    fn drain_if_at_watermark(&mut self) {
        if self.cfg.merge_mode == MergeMode::QueueAndFlush
            && self.cfg.flush_policy == FlushPolicy::RoundAligned
            && self.flush_watermark > 0
            && self.pending.len() >= self.flush_watermark
        {
            self.flush_pending_inner();
        }
    }

    /// Overrides the service-cost model (load experiments).
    pub fn set_costs(&mut self, costs: ServiceCostModel) {
        self.costs = costs;
    }

    /// The shared-dataset standalone hit-ratio profile — handed to newly
    /// booted clients as their initial R.
    pub fn base_hit_profile(&self) -> &[f64] {
        &self.base_hit_profile
    }

    /// Read access to the global table (tests, Fig. 2 experiment).
    pub fn global(&self) -> &GlobalCacheTable {
        &self.global
    }

    /// Effective global frequency: merged Φ plus every queued, not-yet-
    /// merged upload's φ. Eq. 5 is a commutative u64 sum, so this equals
    /// — exactly, not approximately — the Φ a flushed table would hold.
    /// Round-aligned allocations read it so ACA's hot-spot scores see
    /// every completed round even while centroid merges wait for the
    /// fleet-sized batch.
    fn effective_frequency(&self) -> Vec<u64> {
        let mut freq = self.global.frequency().to_vec();
        for up in &self.pending {
            for (f, &phi) in freq.iter_mut().zip(&up.frequency) {
                *f += phi;
            }
        }
        freq
    }

    /// Handles a cache request: flushes any pending upload batch (the
    /// queue-and-flush boundary — allocations must read a fully merged
    /// table), runs ACA (or the static fallback when DCA is disabled) and
    /// extracts the personalized sub-table. Returns the allocation and
    /// the server compute charged to the queue.
    ///
    /// Under [`FlushPolicy::RoundAligned`] the request is **not** a flush
    /// boundary: the queue holds until the fleet watermark, and ACA reads
    /// the [effective frequency](Self::effective_frequency) instead (Φ is
    /// exact either way; centroid positions may lag up to one round —
    /// the policy's documented relaxed observation contract).
    pub fn handle_request(&mut self, req: &CacheRequest) -> (CacheAllocation, SimDuration) {
        if self.durability.is_some() {
            self.wal(&WalRecord::Request(req.clone()));
        }
        self.request_inner(req)
    }

    /// The un-logged request body: everything [`CocaServer::handle_request`]
    /// mutates and computes. WAL replay re-enters here, so a recovered run
    /// repeats the exact flush/allocation path — including the lazy
    /// static-allocation compute of DCA-off configs.
    fn request_inner(&mut self, req: &CacheRequest) -> (CacheAllocation, SimDuration) {
        self.clients
            .entry(req.client_id)
            .or_insert_with(|| ClientStatus::new(self.global.num_classes()))
            .record_timestamps(&req.timestamps);
        let round_aligned = self.cfg.merge_mode == MergeMode::QueueAndFlush
            && self.cfg.flush_policy == FlushPolicy::RoundAligned;
        if !round_aligned {
            self.flush_pending_inner();
        }
        let eff_freq = if round_aligned && !self.pending.is_empty() {
            Some(self.effective_frequency())
        } else {
            None
        };
        let decision = if self.cfg.enable_dca {
            allocate(
                &self.cfg,
                &AcaInputs {
                    global_freq: eff_freq.as_deref().unwrap_or(self.global.frequency()),
                    timestamps: &req.timestamps,
                    hit_ratio: &req.hit_ratio,
                    saved_ms: &self.saved_ms,
                    entry_bytes: &self.entry_bytes,
                    budget_bytes: req.budget_bytes as usize,
                },
            )
        } else {
            // Static allocation: all classes, layers chosen once from the
            // shared-dataset profile under the same budget.
            self.static_alloc
                .get_or_insert_with(|| {
                    let all: Vec<u32> = vec![0; self.global.num_classes()];
                    let _ = &all; // clarity: hot set = every class
                    let hot: Vec<usize> = (0..self.global.num_classes()).collect();
                    let layers = crate::aca::select_layers(
                        &self.cfg,
                        &AcaInputs {
                            global_freq: self.global.frequency(),
                            timestamps: &vec![0; self.global.num_classes()],
                            hit_ratio: &self.base_hit_profile,
                            saved_ms: &self.saved_ms,
                            entry_bytes: &self.entry_bytes,
                            budget_bytes: req.budget_bytes as usize,
                        },
                        hot.len(),
                    );
                    AcaOutput {
                        hot_classes: hot,
                        layers,
                    }
                })
                .clone()
        };

        let mut layers = decision.layers.clone();
        layers.sort_unstable();
        let cache = self.global.extract(&layers, &decision.hot_classes);
        // The server's compute touches the cells it extracts, priced at
        // the precision they ship at (quantized tables move fewer bytes).
        let kb = cache.total_bytes_at(self.cfg.precision) as f64 / 1024.0;
        let service = SimDuration::from_millis_f64(
            self.costs.alloc_base_ms + self.costs.alloc_per_kb_ms * kb,
        );
        (
            CacheAllocation {
                round: req.round,
                cache,
                precision: self.cfg.precision,
            },
            service,
        )
    }

    /// Merges one client upload **immediately** (global cache updates,
    /// Eq. 4/5), regardless of the configured merge mode — the per-upload
    /// primitive. When GCU is disabled only the frequency vector advances
    /// (ACA still needs Φ). The engine routes uploads through
    /// [`CocaServer::handle_upload`], which dispatches on
    /// [`CocaConfig::merge_mode`].
    pub fn handle_update(&mut self, up: &UpdateUpload) -> SimDuration {
        if self.durability.is_some() {
            self.wal(&WalRecord::Merge(up.clone()));
        }
        self.merge_now(up)
    }

    /// The un-logged immediate-merge body (also the replay target of
    /// [`WalRecord::Merge`]).
    fn merge_now(&mut self, up: &UpdateUpload) -> SimDuration {
        self.note_upload(up);
        self.note_provenance(self.cell_id, &up.frequency);
        let kb = up.table.wire_bytes_at(up.precision) as f64 / 1024.0;
        if self.cfg.enable_gcu {
            self.global.merge_update(
                &up.table,
                &up.frequency,
                self.cfg.gamma_global,
                &mut self.scratch,
            );
        } else {
            self.global.advance_frequency(&up.frequency);
        }
        SimDuration::from_millis_f64(self.costs.update_base_ms + self.costs.update_per_kb_ms * kb)
    }

    /// Mirrors an upload's φ into the client registry.
    fn note_upload(&mut self, up: &UpdateUpload) {
        self.clients
            .entry(up.client_id)
            .or_insert_with(|| ClientStatus::new(self.global.num_classes()))
            .record_frequency(&up.frequency);
    }

    /// The engine's upload entry point: dispatches on the configured
    /// [`MergeMode`]. Per-upload merges now; queue-and-flush enqueues and
    /// defers the merge to the next boundary ([`CocaServer::handle_request`],
    /// [`CocaServer::on_client_leave`], or the run's end). Either way the
    /// returned service time is the same per-upload cost-model charge,
    /// billed at the arrival instant — deferral moves the real merge
    /// work, never a virtual millisecond, which is why the two modes
    /// produce byte-identical runs.
    pub fn handle_upload(&mut self, up: UpdateUpload) -> SimDuration {
        if self.durability.is_some() {
            self.wal(&WalRecord::Upload(up.clone()));
        }
        self.upload_inner(up)
    }

    /// The un-logged mode-dispatch body (also the replay target of
    /// [`WalRecord::Upload`]).
    fn upload_inner(&mut self, up: UpdateUpload) -> SimDuration {
        match self.cfg.merge_mode {
            MergeMode::PerUpload => self.merge_now(&up),
            MergeMode::QueueAndFlush => {
                self.note_upload(&up);
                let kb = up.table.wire_bytes_at(up.precision) as f64 / 1024.0;
                self.pending.push(up);
                // Round-aligned: a full round's worth of uploads is the
                // drain trigger (no-op under the default policy or when
                // no watermark was installed).
                self.drain_if_at_watermark();
                SimDuration::from_millis_f64(
                    self.costs.update_base_ms + self.costs.update_per_kb_ms * kb,
                )
            }
        }
    }

    /// Number of uploads queued and not yet merged (always 0 under
    /// [`MergeMode::PerUpload`]).
    pub fn pending_uploads(&self) -> usize {
        self.pending.len()
    }

    /// Drains the pending upload queue through the batched per-layer
    /// merge pass, in FIFO arrival order — the order the per-upload
    /// pipeline would have merged, so the table lands on bit-identical
    /// state. Costs were already charged at enqueue time; flushing adds
    /// no virtual service time. No-op when nothing is pending.
    ///
    /// This is the *external* flush boundary (the engine's run-end hook)
    /// and is WAL-logged as such; the flushes embedded in request/leave/
    /// watermark handling are covered by those events' own records.
    pub fn flush_pending(&mut self) {
        if self.durability.is_some() && !self.pending.is_empty() {
            self.wal(&WalRecord::Flush);
        }
        self.flush_pending_inner();
    }

    fn flush_pending_inner(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        // One upload per client per flush window by construction *under
        // the default boundary policy*: a CoCa client's next request (a
        // flush boundary) always lands between its consecutive uploads.
        // Round-aligned windows with heterogeneous `frames_per_round` CAN
        // legitimately hold two uploads from a fast client (its second
        // round ends before a slow member's first), so the diagnostic is
        // scoped to the policy whose invariant it states. Arrival order
        // stays correct either way — the batched pass is
        // sequential-equivalent in the given order.
        debug_assert!(
            self.cfg.flush_policy != FlushPolicy::EveryBoundary || {
                let mut ids: Vec<u64> = self.pending.iter().map(|u| u.client_id).collect();
                ids.sort_unstable();
                ids.windows(2).all(|w| w[0] != w[1])
            },
            "duplicate client in one flush window"
        );
        let pending = std::mem::take(&mut self.pending);
        self.merge_upload_batch(&pending);
        // Hand the drained buffer back so steady-state flushing reuses
        // its allocation.
        self.pending = pending;
        self.pending.clear();
    }

    /// Cell count below which a flush stays on the serial batched pass
    /// even with `parallel_merge` on: the shim's sharded pass spawns
    /// scoped workers per invocation, so a per-request trickle (one or
    /// two small uploads between consecutive allocation boundaries)
    /// would pay tens of microseconds of spawn/join around a merge that
    /// takes microseconds serially. Whole-round fleet batches clear this
    /// easily. Output is bit-identical on either side of the threshold.
    const SHARD_MIN_CELLS: usize = 256;

    /// The shared batched-merge core: merges `ups` in the given order via
    /// one per-layer pass — sharded across layers with rayon when
    /// `parallel_merge` is on and the batch is big enough to amortize
    /// the shard spawn ([`Self::SHARD_MIN_CELLS`]), serial otherwise.
    /// Both are bit-identical to sequential per-upload merging in the
    /// same order.
    fn merge_upload_batch(&mut self, ups: &[UpdateUpload]) {
        let own = self.cell_id;
        for up in ups {
            self.note_provenance(own, &up.frequency);
        }
        if self.cfg.enable_gcu {
            let batch: Vec<(&UpdateTable, &[u64])> = ups
                .iter()
                .map(|u| (&u.table, u.frequency.as_slice()))
                .collect();
            let cells: usize = ups.iter().map(|u| u.table.len()).sum();
            if self.cfg.parallel_merge && ups.len() >= 2 && cells >= Self::SHARD_MIN_CELLS {
                self.global
                    .merge_batch_sharded(&batch, self.cfg.gamma_global, &mut self.scratch);
            } else {
                self.global
                    .merge_batch(&batch, self.cfg.gamma_global, &mut self.scratch);
            }
        } else {
            for up in ups {
                self.global.advance_frequency(&up.frequency);
            }
        }
    }

    /// Batched round processing, the offline/bench API: flushes any
    /// queued uploads first (they arrived earlier — merging the batch
    /// ahead of them would invert the arrival order the Eq. 4 prefix-Φ
    /// weights reproduce), canonicalizes the batch to client-id order,
    /// rejects duplicate client ids, then drains it through the same
    /// per-layer batched pass the queue-and-flush pipeline uses.
    ///
    /// The duplicate check exists because a batch is *defined* as one
    /// round's contributions — one upload per client — so a repeated id
    /// can only be an accidental duplication (a retry, a double-queue),
    /// and merging it silently would apply that client's φ twice with
    /// order-dependent results. The error fires **before** any state
    /// changes. Callers replaying a multi-round trace should feed rounds
    /// through [`CocaServer::handle_upload`] /
    /// [`CocaServer::handle_update`] instead, one round at a time.
    ///
    /// Bit-identical to calling [`CocaServer::handle_update`] per upload
    /// in the canonical order (property-tested), which is what makes
    /// per-layer server sharding safe. Returns the summed service time,
    /// priced by the same cost model as the sequential path.
    ///
    /// Under [`FlushPolicy::RoundAligned`] this API follows the same
    /// watermark discipline as the live pipeline instead of treating
    /// every batch as a flush boundary: the (canonicalized) batch joins
    /// the queue and drains only once a fleet-sized window accumulates.
    /// A caller that never installed a watermark still drains per batch
    /// — an offline batch *is* one round's fleet contribution.
    ///
    /// The batch is sorted in place even when an error is returned.
    pub fn handle_updates_batch(
        &mut self,
        ups: &mut [UpdateUpload],
    ) -> Result<SimDuration, DuplicateClientUpload> {
        // Canonicalize and validate before logging or mutating anything:
        // a rejected batch must leave both the state and the WAL
        // untouched (sorting the caller's slice is documented API).
        ups.sort_by_key(|u| u.client_id);
        if let Some(w) = ups.windows(2).find(|w| w[0].client_id == w[1].client_id) {
            return Err(DuplicateClientUpload {
                client_id: w[0].client_id,
            });
        }
        if self.durability.is_some() {
            self.wal(&WalRecord::Batch(ups.to_vec()));
        }
        Ok(self.batch_inner(ups))
    }

    /// The un-logged batch body: `ups` is already canonicalized (sorted by
    /// client id, duplicate-free). Also the replay target of
    /// [`WalRecord::Batch`]. The embedded pre-batch flush runs *after* the
    /// batch record was logged, which is safe because flushing consumes
    /// only state that earlier WAL records reconstruct.
    fn batch_inner(&mut self, ups: &[UpdateUpload]) -> SimDuration {
        let round_aligned = self.cfg.merge_mode == MergeMode::QueueAndFlush
            && self.cfg.flush_policy == FlushPolicy::RoundAligned;
        if !round_aligned {
            self.flush_pending_inner();
        }
        for up in ups {
            self.note_upload(up);
        }
        let mut total_kb = 0.0f64;
        for up in ups.iter() {
            total_kb += up.table.wire_bytes_at(up.precision) as f64 / 1024.0;
        }
        if round_aligned {
            self.pending.extend(ups.iter().cloned());
            if self.flush_watermark == 0 {
                self.flush_pending_inner();
            } else {
                self.drain_if_at_watermark();
            }
        } else {
            self.merge_upload_batch(ups);
        }
        SimDuration::from_millis_f64(
            self.costs.update_base_ms * ups.len() as f64 + self.costs.update_per_kb_ms * total_kb,
        )
    }

    /// Fires when a client departs the fleet: flushes any pending upload
    /// batch (the leave is a merge boundary — the decay below must see
    /// every upload that already reached the server, exactly as the
    /// per-upload pipeline would), then applies the configured
    /// exponential Φ decay `Φ ← ⌈β·Φ⌉` so the leaver's frequency mass
    /// ages out of ACA's hot-spot scores (a no-op at the default β = 1).
    pub fn on_client_leave(&mut self) {
        self.wal(&WalRecord::Leave);
        self.leave_inner();
    }

    fn leave_inner(&mut self) {
        self.flush_pending_inner();
        if self.cfg.leave_phi_decay < 1.0 {
            self.global.decay_frequency(self.cfg.leave_phi_decay);
        }
    }

    // -- multi-edge peer sync -----------------------------------------------

    /// Adds `phi` (elementwise) to `origin`'s cumulative provenance row.
    fn note_provenance(&mut self, origin: u32, phi: &[u64]) {
        let classes = self.global.num_classes();
        let row = self
            .origin_freq
            .entry(origin)
            .or_insert_with(|| vec![0u64; classes]);
        for (r, &p) in row.iter_mut().zip(phi) {
            *r += p;
        }
    }

    /// Builds the table delta to ship to peer cell `to_peer` and advances
    /// that peer's send cursors: for every origin whose provenance row
    /// grew since the last export to this peer — skipping mass the peer
    /// itself originated, which it already holds — one
    /// [`PeerDeltaEntry`] carrying this server's *current merged
    /// centroids* for the grown classes plus exactly the Φ growth. The
    /// receiver replays the entry through the same Eq. 4/5 batched merge
    /// as a client upload, so along single-inbound-path topologies (the
    /// gossip ring, the hub-and-spoke star) every origin's Φ mass lands
    /// on every cell exactly once and fleet-wide Φ is conserved.
    ///
    /// Entries are ascending by origin id and the whole construction is
    /// a deterministic function of merge history — the driver's sync
    /// schedule stays bit-identical at any rayon width. Under a
    /// quantized config the tables are snapped onto the precision grid
    /// before export, exactly like client uploads.
    pub fn export_delta(&mut self, to_peer: u32) -> PeerDelta {
        self.export_filtered(to_peer, false)
    }

    /// Like [`CocaServer::export_delta`] but restricted to this cell's
    /// *own* origin mass. This is the spoke→hub direction of the
    /// hub-and-spoke mode: the hub already aggregates every other
    /// spoke's mass directly, so a spoke forwarding third-party mass it
    /// learned *from the hub's broadcasts* would double-count it there.
    /// Own-only exports keep the star a single-delivery topology.
    pub fn export_own_delta(&mut self, to_peer: u32) -> PeerDelta {
        self.export_filtered(to_peer, true)
    }

    fn export_filtered(&mut self, to_peer: u32, own_only: bool) -> PeerDelta {
        let classes = self.global.num_classes();
        let layers = self.global.num_layers();
        let own = self.cell_id;
        let mut entries = Vec::new();
        let cursors = self.sent_to.entry(to_peer).or_default();
        for (&origin, row) in &self.origin_freq {
            if origin == to_peer || (own_only && origin != own) {
                continue;
            }
            let cursor = cursors.entry(origin).or_insert_with(|| vec![0u64; classes]);
            let delta: Vec<u64> = row.iter().zip(cursor.iter()).map(|(r, s)| r - s).collect();
            if delta.iter().all(|&d| d == 0) {
                continue;
            }
            // Ship the current merged view of every class whose mass
            // grew: global rows are unit-norm by contract, so absorbing
            // them at weight 1.0 (which l2-normalizes fresh inserts)
            // reproduces them exactly.
            let mut table = UpdateTable::new();
            for (c, _) in delta.iter().enumerate().filter(|&(_, &d)| d > 0) {
                for l in 0..layers {
                    if let Some(v) = self.global.get(c, l) {
                        table.absorb(c, l, &v, 1.0);
                    }
                }
            }
            if self.cfg.precision != Precision::F32 {
                table.quantize_in_place(self.cfg.precision);
            }
            cursor.copy_from_slice(row);
            entries.push(PeerDeltaEntry {
                origin,
                table,
                frequency: delta,
            });
        }
        PeerDelta {
            from_cell: self.cell_id,
            precision: self.cfg.precision,
            entries,
        }
    }

    /// Merges a peer cell's delta: each entry runs through the same
    /// batched Eq. 4/5 pass as a round of client uploads (frequency-only
    /// when GCU is off), then extends the matching origin's provenance
    /// row — so re-exports downstream attribute the mass to its true
    /// origin, not to the relaying cell. Returns the service time under
    /// the same cost model as uploads, priced by the delta's wire bytes.
    pub fn absorb_peer(&mut self, delta: &PeerDelta) -> SimDuration {
        let kb = delta.wire_bytes() as f64 / 1024.0;
        if self.cfg.enable_gcu {
            let batch: Vec<(&UpdateTable, &[u64])> = delta
                .entries
                .iter()
                .map(|e| (&e.table, e.frequency.as_slice()))
                .collect();
            let cells: usize = delta.entries.iter().map(|e| e.table.len()).sum();
            if self.cfg.parallel_merge && batch.len() >= 2 && cells >= Self::SHARD_MIN_CELLS {
                self.global
                    .merge_batch_sharded(&batch, self.cfg.gamma_global, &mut self.scratch);
            } else {
                self.global
                    .merge_batch(&batch, self.cfg.gamma_global, &mut self.scratch);
            }
        } else {
            for e in &delta.entries {
                self.global.advance_frequency(&e.frequency);
            }
        }
        for e in &delta.entries {
            self.note_provenance(e.origin, &e.frequency);
        }
        SimDuration::from_millis_f64(self.costs.update_base_ms + self.costs.update_per_kb_ms * kb)
    }

    // -- durability ---------------------------------------------------------

    /// Attaches snapshot + WAL persistence. On a fresh backend this writes
    /// the genesis snapshot (both generations), so every later recovery —
    /// including one that finds the current snapshot corrupted — has a
    /// valid generation to fall back to. From here on every state-mutating
    /// handler appends its WAL record *before* mutating.
    pub fn attach_durability(&mut self, mut durability: Durability) {
        durability.ensure_genesis(&self.snapshot().to_bytes());
        self.durability = Some(durability);
    }

    /// [`CocaServer::attach_durability`] with the WAL segment length
    /// taken from the server's own config
    /// ([`CocaConfig::wal_rotate_records`], env `COCA_WAL_ROTATE`) — the
    /// deployment entry point; tests pass explicit periods instead.
    pub fn attach_storage(&mut self, store: Box<dyn crate::persist::Storage>) {
        let rotate = self.cfg.wal_rotate_records;
        self.attach_durability(Durability::new(store, rotate));
    }

    /// Detaches and returns the durability layer (test inspection; the
    /// server keeps running un-logged).
    pub fn detach_durability(&mut self) -> Option<Durability> {
        self.durability.take()
    }

    /// The attached durability layer, if any.
    pub fn durability(&self) -> Option<&Durability> {
        self.durability.as_ref()
    }

    /// Forces a checkpoint: collapses both snapshot generations onto the
    /// current state and empties the WAL. No-op without durability.
    pub fn checkpoint(&mut self) {
        let Some(mut d) = self.durability.take() else {
            return;
        };
        d.checkpoint(&self.snapshot().to_bytes());
        self.durability = Some(d);
    }

    /// A snapshot of the full mutable server state (the derived fields —
    /// cost model, hit profile, per-layer Υ/mⱼ — are reconstructed from
    /// `(rt, cfg, seeds)` by [`CocaServer::new`], not persisted).
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            config: self.cfg,
            global: self.global.clone(),
            clients: self.clients.iter().map(|(k, v)| (*k, v.clone())).collect(),
            pending: self.pending.clone(),
            flush_watermark: self.flush_watermark,
            static_alloc: self.static_alloc.clone(),
        }
    }

    /// The server-side mirror of the last τ/φ each client reported.
    pub fn client_registry(&self) -> &BTreeMap<u64, ClientStatus> {
        &self.clients
    }

    /// Rebuilds a server from persisted state: loads the newest valid
    /// snapshot generation, replays the WAL tail (truncating a torn final
    /// record), folds the result into a fresh checkpoint and re-attaches
    /// the durability layer. `(rt, cfg, seeds)` must match the crashed
    /// server's — the snapshot's embedded config is checked against `cfg`.
    pub fn recover(
        rt: &ModelRuntime,
        cfg: CocaConfig,
        seeds: &SeedTree,
        mut durability: Durability,
    ) -> Result<(Self, RecoveryInfo), PersistError> {
        let mut server = Self::new(rt, cfg, seeds);
        let info = server.recover_from(&mut durability)?;
        durability.checkpoint(&server.snapshot().to_bytes());
        server.durability = Some(durability);
        Ok((server, info))
    }

    /// Restores snapshot state and replays WAL records through the same
    /// un-logged handler bodies the live server runs — bit-identical
    /// state, including the fused merge kernels' float semantics. The
    /// genesis case (no snapshot ever written) replays onto `self` as-is,
    /// which is correct for a freshly constructed server and unreachable
    /// in-place ([`CocaServer::attach_durability`] writes a genesis
    /// snapshot).
    fn recover_from(&mut self, durability: &mut Durability) -> Result<RecoveryInfo, PersistError> {
        let (snap, records, info) = durability.load_for_recovery()?;
        if let Some(snap) = snap {
            let mine = serde_json::to_string(&self.cfg).expect("configs always serialize");
            let theirs = serde_json::to_string(&snap.config).expect("configs always serialize");
            if mine != theirs {
                return Err(PersistError::ConfigMismatch);
            }
            self.global = snap.global;
            self.clients = snap.clients.into_iter().collect();
            self.pending = snap.pending;
            self.flush_watermark = snap.flush_watermark;
            self.static_alloc = snap.static_alloc;
        }
        for rec in &records {
            self.apply_wal(rec);
        }
        Ok(info)
    }

    /// Replays one WAL record by dispatching to the matching un-logged
    /// handler body. Service-time returns are discarded — virtual costs
    /// were already charged by the original run.
    fn apply_wal(&mut self, rec: &WalRecord) {
        match rec {
            WalRecord::Request(req) => {
                let _ = self.request_inner(req);
            }
            WalRecord::Merge(up) => {
                let _ = self.merge_now(up);
            }
            WalRecord::Upload(up) => {
                let _ = self.upload_inner(up.clone());
            }
            WalRecord::Batch(ups) => {
                let _ = self.batch_inner(ups);
            }
            WalRecord::Leave => self.leave_inner(),
            WalRecord::Flush => self.flush_pending_inner(),
            WalRecord::Watermark(n) => self.watermark_inner(*n),
        }
    }

    /// Appends one record to the WAL — **before** the handler mutates
    /// state, so a crash at any event boundary loses at most the
    /// not-yet-applied event. This is also the crash-injection point: a
    /// due [`CrashPlan`](crate::persist::CrashPlan) damages storage
    /// exactly as a mid-append die would, the server recovers in place
    /// from what survived, and the interrupted event is then redelivered
    /// — the synchronous equivalent of process death + restart +
    /// client retry.
    fn wal(&mut self, rec: &WalRecord) {
        let Some(mut d) = self.durability.take() else {
            return;
        };
        let frame = rec.to_frame();
        if d.crash_due() {
            d.fire_crash(&frame);
            // `durability` is detached here, so the replay inside
            // `recover_from` runs the un-logged bodies without re-logging.
            self.recover_from(&mut d)
                .expect("crash injection must leave a recoverable snapshot generation");
            d.checkpoint(&self.snapshot().to_bytes());
        }
        if d.needs_rotation() {
            // Rotate *before* appending: the rotation snapshot must hold
            // exactly the state the previous segment's records produce —
            // this record's mutation has not happened yet.
            d.rotate(&self.snapshot().to_bytes());
        }
        d.append_frame(&frame);
        self.durability = Some(d);
    }

    /// Builds a cache holding *every* class at *every* layer (motivation
    /// experiments; not used in normal operation).
    pub fn full_cache(&self) -> LocalCache {
        let layers: Vec<usize> = (0..self.global.num_layers()).collect();
        let classes: Vec<usize> = (0..self.global.num_classes()).collect();
        self.global.extract(&layers, &classes)
    }

    /// Builds a cache with the given layers and classes straight from the
    /// global table (motivation experiments and baselines).
    pub fn cache_for(&self, layers: &[usize], classes: &[usize]) -> LocalCache {
        self.global.extract(layers, classes)
    }

    /// A single fully-populated layer (replacement-policy baselines).
    pub fn layer_snapshot(&self, point: usize, classes: &[usize]) -> CacheLayer {
        let mut l = CacheLayer::new(point);
        for &c in classes {
            if let Some(v) = self.global.get(c, point) {
                l.insert(c, v.to_vec());
            }
        }
        l
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coca_data::DatasetSpec;
    use coca_model::ModelId;

    fn server() -> (ModelRuntime, CocaServer) {
        let dataset = DatasetSpec::ucf101().subset(20);
        let seeds = SeedTree::new(60);
        let rt = ModelRuntime::new(ModelId::ResNet101, &dataset, &seeds);
        let cfg = CocaConfig::for_model(ModelId::ResNet101);
        let server = CocaServer::new(&rt, cfg, &seeds);
        (rt, server)
    }

    #[test]
    fn seeding_populates_global_cache() {
        let (_, server) = server();
        assert!(
            server.global().fill_ratio() > 0.95,
            "fill {}",
            server.global().fill_ratio()
        );
        assert!(server.global().frequency().iter().all(|&f| f > 0));
    }

    #[test]
    fn base_hit_profile_is_cumulative_and_nontrivial() {
        let (_, server) = server();
        let prof = server.base_hit_profile();
        assert!(
            prof.windows(2).all(|w| w[1] + 1e-12 >= w[0]),
            "must be non-decreasing"
        );
        let last = *prof.last().unwrap();
        assert!(last > 0.3, "overall hit ratio on shared data {last}");
        assert!(last <= 1.0);
    }

    #[test]
    fn request_yields_budgeted_allocation() {
        let (rt, mut server) = server();
        let req = CacheRequest {
            client_id: 0,
            round: 0,
            timestamps: vec![0; rt.num_classes()],
            hit_ratio: server.base_hit_profile().to_vec(),
            budget_bytes: 48 * 1024,
        };
        let (alloc, service) = server.handle_request(&req);
        assert!(!alloc.cache.is_empty());
        assert!(alloc.cache.total_bytes() <= 48 * 1024);
        assert!(service.as_millis_f64() > 0.0);
    }

    #[test]
    fn updates_move_the_global_table_only_with_gcu() {
        let (rt, mut server) = server();
        let layer = 10usize;
        let before = server.global().get(3, layer).unwrap().to_vec();
        let mut table = crate::collect::UpdateTable::new();
        // Push an orthogonal-ish direction with overwhelming frequency.
        let mut v = vec![0.0f32; rt.feature_dim(layer)];
        v[0] = 1.0;
        table.absorb(3, layer, &v, 0.0);
        let mut phi = vec![0u64; rt.num_classes()];
        phi[3] = 100_000;
        let up = UpdateUpload {
            client_id: 0,
            round: 0,
            table,
            frequency: phi,
            precision: coca_math::Precision::F32,
        };
        server.handle_update(&up);
        let after = server.global().get(3, layer).unwrap().to_vec();
        assert!(
            coca_math::cosine(&before, &after) < 0.999,
            "entry did not move"
        );
        assert!(server.global().frequency()[3] > 100_000);
    }

    fn upload_for(rt: &ModelRuntime, client_id: u64, class: usize, layer: usize) -> UpdateUpload {
        let mut table = crate::collect::UpdateTable::new();
        let dim = rt.feature_dim(layer);
        let mut v = vec![0.0f32; dim];
        v[(client_id as usize + 1) % dim] = 1.0;
        table.absorb(class, layer, &v, 0.0);
        let mut phi = vec![0u64; rt.num_classes()];
        phi[class] = 50 + client_id;
        UpdateUpload {
            client_id,
            round: 0,
            table,
            frequency: phi,
            precision: coca_math::Precision::F32,
        }
    }

    #[test]
    fn batch_with_duplicate_client_is_rejected_before_merging() {
        let (rt, mut server) = server();
        let before = server.global().get(3, 10).unwrap().to_vec();
        let freq_before = server.global().frequency().to_vec();
        let mut ups = vec![
            upload_for(&rt, 7, 3, 10),
            upload_for(&rt, 2, 4, 11),
            upload_for(&rt, 7, 5, 12),
        ];
        let err = server.handle_updates_batch(&mut ups).unwrap_err();
        assert_eq!(err, DuplicateClientUpload { client_id: 7 });
        assert!(!err.to_string().is_empty());
        // The error fired before any merge: table and Φ untouched —
        // including client 2's perfectly valid upload.
        assert_eq!(server.global().get(3, 10).unwrap(), before.as_slice());
        assert_eq!(server.global().frequency(), freq_before.as_slice());
        // Deduplicated, the same batch merges fine.
        let mut ok = vec![upload_for(&rt, 7, 3, 10), upload_for(&rt, 2, 4, 11)];
        let service = server.handle_updates_batch(&mut ok).unwrap();
        assert!(service.as_millis_f64() > 0.0);
        assert_ne!(server.global().frequency(), freq_before.as_slice());
    }

    #[test]
    fn queue_and_flush_defers_merges_to_the_request_boundary() {
        let dataset = DatasetSpec::ucf101().subset(20);
        let seeds = SeedTree::new(62);
        let rt = ModelRuntime::new(ModelId::ResNet101, &dataset, &seeds);
        let cfg =
            CocaConfig::for_model(ModelId::ResNet101).with_merge_mode(MergeMode::QueueAndFlush);
        let mut server = CocaServer::new(&rt, cfg, &seeds);
        let freq_before = server.global().frequency().to_vec();

        let up = upload_for(&rt, 0, 3, 10);
        let deferred_cost = server.handle_upload(up.clone());
        assert_eq!(server.pending_uploads(), 1);
        // The table has not moved yet...
        assert_eq!(server.global().frequency(), freq_before.as_slice());
        // ...and the charge equals the per-upload price.
        let mut per_upload =
            CocaServer::new(&rt, CocaConfig::for_model(ModelId::ResNet101), &seeds);
        assert_eq!(per_upload.handle_update(&up), deferred_cost);

        // A request flushes before allocating.
        let req = CacheRequest {
            client_id: 1,
            round: 0,
            timestamps: vec![0; rt.num_classes()],
            hit_ratio: server.base_hit_profile().to_vec(),
            budget_bytes: 48 * 1024,
        };
        let _ = server.handle_request(&req);
        assert_eq!(server.pending_uploads(), 0);
        assert_eq!(
            server.global().frequency(),
            per_upload.global().frequency(),
            "flush lands the same Eq. 5 state as the per-upload pipeline"
        );
        for (a, b) in server
            .global()
            .get(3, 10)
            .unwrap()
            .iter()
            .zip(per_upload.global().get(3, 10).unwrap().iter())
        {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn round_aligned_holds_the_queue_until_the_fleet_watermark() {
        let dataset = DatasetSpec::ucf101().subset(20);
        let seeds = SeedTree::new(64);
        let rt = ModelRuntime::new(ModelId::ResNet101, &dataset, &seeds);
        let cfg = CocaConfig::for_model(ModelId::ResNet101)
            .with_merge_mode(MergeMode::QueueAndFlush)
            .with_flush_policy(FlushPolicy::RoundAligned);
        let mut server = CocaServer::new(&rt, cfg, &seeds);
        server.set_flush_watermark(3);
        let mut reference = CocaServer::new(&rt, CocaConfig::for_model(ModelId::ResNet101), &seeds);

        let ups = [
            upload_for(&rt, 0, 3, 10),
            upload_for(&rt, 1, 4, 11),
            upload_for(&rt, 2, 5, 12),
        ];
        server.handle_upload(ups[0].clone());
        server.handle_upload(ups[1].clone());
        assert_eq!(server.pending_uploads(), 2);

        // A request is NOT a flush boundary under this policy...
        let req = CacheRequest {
            client_id: 9,
            round: 0,
            timestamps: vec![0; rt.num_classes()],
            hit_ratio: server.base_hit_profile().to_vec(),
            budget_bytes: 48 * 1024,
        };
        let (alloc, _) = server.handle_request(&req);
        assert!(!alloc.cache.is_empty());
        assert_eq!(
            server.pending_uploads(),
            2,
            "round-aligned requests must not drain the queue"
        );

        // ...but the watermark upload is: the fleet-sized batch drains.
        server.handle_upload(ups[2].clone());
        assert_eq!(server.pending_uploads(), 0);
        for up in &ups {
            reference.handle_update(up);
        }
        assert_eq!(
            server.global().frequency(),
            reference.global().frequency(),
            "the drained batch lands the same Eq. 5 state"
        );
        for (c, j) in [(3usize, 10usize), (4, 11), (5, 12)] {
            for (a, b) in server
                .global()
                .get(c, j)
                .unwrap()
                .iter()
                .zip(reference.global().get(c, j).unwrap().iter())
            {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }

        // A shrinking watermark drains an already-full queue immediately.
        server.handle_upload(upload_for(&rt, 0, 3, 10));
        server.handle_upload(upload_for(&rt, 1, 4, 11));
        assert_eq!(server.pending_uploads(), 2);
        server.set_flush_watermark(2);
        assert_eq!(server.pending_uploads(), 0);
    }

    #[test]
    fn round_aligned_batch_api_respects_the_watermark() {
        let dataset = DatasetSpec::ucf101().subset(20);
        let seeds = SeedTree::new(65);
        let rt = ModelRuntime::new(ModelId::ResNet101, &dataset, &seeds);
        let cfg = CocaConfig::for_model(ModelId::ResNet101)
            .with_merge_mode(MergeMode::QueueAndFlush)
            .with_flush_policy(FlushPolicy::RoundAligned);
        let mut server = CocaServer::new(&rt, cfg, &seeds);
        server.set_flush_watermark(4);
        let freq_before = server.global().frequency().to_vec();

        // A half-fleet batch queues without merging...
        let mut half = vec![upload_for(&rt, 0, 3, 10), upload_for(&rt, 1, 4, 11)];
        let service = server.handle_updates_batch(&mut half).unwrap();
        assert!(service.as_millis_f64() > 0.0);
        assert_eq!(server.pending_uploads(), 2);
        assert_eq!(server.global().frequency(), freq_before.as_slice());

        // ...and the batch that completes the fleet window drains it.
        let mut rest = vec![upload_for(&rt, 2, 5, 12), upload_for(&rt, 3, 6, 13)];
        server.handle_updates_batch(&mut rest).unwrap();
        assert_eq!(server.pending_uploads(), 0);
        assert_ne!(server.global().frequency(), freq_before.as_slice());

        // Without a watermark the offline contract holds: one batch is
        // one round, so it drains at the call boundary.
        let mut no_mark = CocaServer::new(&rt, cfg, &seeds);
        let mut ups = vec![upload_for(&rt, 0, 3, 10)];
        no_mark.handle_updates_batch(&mut ups).unwrap();
        assert_eq!(no_mark.pending_uploads(), 0);
    }

    #[test]
    fn quantized_config_prices_smaller_frames_and_still_serves() {
        let dataset = DatasetSpec::ucf101().subset(20);
        let seeds = SeedTree::new(66);
        let rt = ModelRuntime::new(ModelId::ResNet101, &dataset, &seeds);
        let f32_cfg = CocaConfig::for_model(ModelId::ResNet101);
        let i8_cfg = f32_cfg.with_precision(coca_math::Precision::I8);
        let mut dense = CocaServer::new(&rt, f32_cfg, &seeds);
        let mut quant = CocaServer::new(&rt, i8_cfg, &seeds);
        assert_eq!(quant.global().precision(), coca_math::Precision::I8);
        assert!(
            quant.global().store_bytes() * 3 < dense.global().store_bytes(),
            "i8 table {} vs f32 table {}",
            quant.global().store_bytes(),
            dense.global().store_bytes()
        );

        let req = CacheRequest {
            client_id: 0,
            round: 0,
            timestamps: vec![0; rt.num_classes()],
            hit_ratio: quant.base_hit_profile().to_vec(),
            budget_bytes: 48 * 1024,
        };
        let (qa, _) = quant.handle_request(&req);
        let (da, _) = dense.handle_request(&req);
        assert_eq!(qa.precision, coca_math::Precision::I8);
        assert!(!qa.cache.is_empty());
        // Served centers are unit f32 regardless of storage codec.
        for l in qa.cache.layers() {
            for r in l.vectors.iter_rows() {
                assert!(coca_math::is_unit(r, 1e-3));
            }
        }
        use coca_net::WireSize;
        assert!(
            qa.wire_bytes() * 3 < da.wire_bytes(),
            "i8 allocation {} vs f32 {}",
            qa.wire_bytes(),
            da.wire_bytes()
        );
        // Uploads still merge.
        let up = upload_for(&rt, 0, 3, 10);
        quant.handle_update(&up);
        assert!(quant.global().frequency()[3] >= 50);
    }

    #[test]
    fn leave_boundary_flushes_before_phi_decay() {
        let dataset = DatasetSpec::ucf101().subset(20);
        let seeds = SeedTree::new(63);
        let rt = ModelRuntime::new(ModelId::ResNet101, &dataset, &seeds);
        let mut cfg =
            CocaConfig::for_model(ModelId::ResNet101).with_merge_mode(MergeMode::QueueAndFlush);
        cfg.leave_phi_decay = 0.5;
        let mut qaf = CocaServer::new(&rt, cfg, &seeds);
        let mut per_upload = {
            let mut c = cfg;
            c.merge_mode = MergeMode::PerUpload;
            CocaServer::new(&rt, c, &seeds)
        };
        let up = upload_for(&rt, 0, 3, 10);
        qaf.handle_upload(up.clone());
        per_upload.handle_update(&up);
        // Decay must apply to the post-merge Φ in both pipelines.
        qaf.on_client_leave();
        per_upload.on_client_leave();
        assert_eq!(qaf.pending_uploads(), 0);
        assert_eq!(qaf.global().frequency(), per_upload.global().frequency());
    }

    #[test]
    fn dca_off_gives_static_all_class_allocation() {
        let dataset = DatasetSpec::ucf101().subset(20);
        let seeds = SeedTree::new(61);
        let rt = ModelRuntime::new(ModelId::ResNet101, &dataset, &seeds);
        let mut cfg = CocaConfig::for_model(ModelId::ResNet101);
        cfg.enable_dca = false;
        let mut server = CocaServer::new(&rt, cfg, &seeds);
        // Heavily skewed timestamps would shrink a dynamic hot set; the
        // static path must ignore them.
        let mut tau = vec![1_000_000u32; rt.num_classes()];
        tau[0] = 0;
        let req = CacheRequest {
            client_id: 0,
            round: 0,
            timestamps: tau,
            hit_ratio: server.base_hit_profile().to_vec(),
            budget_bytes: 64 * 1024,
        };
        let (alloc, _) = server.handle_request(&req);
        for l in alloc.cache.layers() {
            assert_eq!(
                l.len(),
                rt.num_classes(),
                "static allocation caches all classes"
            );
        }
    }

    // -- durability ---------------------------------------------------------

    use crate::persist::{
        CrashFault, CrashPlan, MemStorage, SnapshotSource, SNAP_CUR, SNAP_PREV, WAL_CUR,
    };

    /// Drives a mixed event sequence — requests, per-upload merges, a
    /// queued upload, a batch, a leave, a flush — through the public
    /// (logged) handlers. Six WAL records under the default per-upload
    /// pipeline (the trailing flush finds an empty queue and logs nothing).
    fn drive_mixed(rt: &ModelRuntime, server: &mut CocaServer) {
        let profile = server.base_hit_profile().to_vec();
        let mkreq = |id: u64| CacheRequest {
            client_id: id,
            round: 0,
            timestamps: vec![id as u32; rt.num_classes()],
            hit_ratio: profile.clone(),
            budget_bytes: 48 * 1024,
        };
        let _ = server.handle_request(&mkreq(0));
        server.handle_update(&upload_for(rt, 0, 3, 10));
        let _ = server.handle_upload(upload_for(rt, 1, 4, 11));
        let mut batch = vec![upload_for(rt, 2, 5, 12), upload_for(rt, 3, 6, 13)];
        server.handle_updates_batch(&mut batch).unwrap();
        let _ = server.handle_request(&mkreq(1));
        server.on_client_leave();
        server.flush_pending();
    }

    fn durable_server(rotate_every: usize) -> (ModelRuntime, CocaServer) {
        let (rt, mut server) = server();
        server.attach_durability(Durability::new(Box::new(MemStorage::new()), rotate_every));
        (rt, server)
    }

    #[test]
    fn durability_is_observationally_transparent() {
        let (rt, mut plain) = server();
        let (_, mut durable) = durable_server(3);
        drive_mixed(&rt, &mut plain);
        drive_mixed(&rt, &mut durable);
        assert_eq!(
            plain.snapshot().to_bytes(),
            durable.snapshot().to_bytes(),
            "logging must not perturb a single byte of server state"
        );
        let d = durable.durability().unwrap();
        assert!(d.events_logged() >= 6, "got {}", d.events_logged());
    }

    #[test]
    fn attach_storage_takes_the_rotation_period_from_config() {
        let dataset = DatasetSpec::ucf101().subset(20);
        let seeds = SeedTree::new(60);
        let rt = ModelRuntime::new(ModelId::ResNet101, &dataset, &seeds);
        let cfg = CocaConfig::for_model(ModelId::ResNet101).with_wal_rotate(2);
        let mut server = CocaServer::new(&rt, cfg, &seeds);
        server.attach_storage(Box::new(MemStorage::new()));
        drive_mixed(&rt, &mut server);
        let d = server.detach_durability().unwrap();
        assert!(d.events_logged() >= 6);
        // Six records through a 2-record segment: the log must have
        // rotated, leaving a non-empty previous generation behind.
        let store = d.into_storage();
        assert!(
            store
                .load(crate::persist::WAL_PREV)
                .is_some_and(|w| !w.is_empty()),
            "config-driven rotation never fired"
        );
    }

    #[test]
    fn recover_rebuilds_byte_identical_state() {
        // rotate_every=3 forces generation turnover mid-sequence.
        let (rt, mut live) = durable_server(3);
        drive_mixed(&rt, &mut live);
        let want = live.snapshot().to_bytes();
        let d = live.detach_durability().unwrap();

        let dataset = DatasetSpec::ucf101().subset(20);
        let seeds = SeedTree::new(60);
        let rt2 = ModelRuntime::new(ModelId::ResNet101, &dataset, &seeds);
        let cfg = CocaConfig::for_model(ModelId::ResNet101);
        let (recovered, info) = CocaServer::recover(&rt2, cfg, &seeds, d).unwrap();
        assert_eq!(info.source, SnapshotSource::Current);
        assert_eq!(info.truncated_bytes, 0);
        assert_eq!(recovered.snapshot().to_bytes(), want);
        assert_eq!(
            recovered.client_registry().len(),
            live.client_registry().len()
        );
        // The recovery folded into a checkpoint: the WAL is empty again.
        let d = recovered.durability().unwrap();
        assert_eq!(d.storage().load(WAL_CUR).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn recovery_truncates_a_torn_final_record() {
        let (rt, mut live) = durable_server(100);
        drive_mixed(&rt, &mut live);
        let want = live.snapshot().to_bytes();
        let mut d = live.detach_durability().unwrap();
        // Tear: half of a frame whose CRC can never validate.
        let frame = WalRecord::Leave.to_frame();
        d.storage_mut().append(WAL_CUR, &frame[..frame.len() / 2]);

        let dataset = DatasetSpec::ucf101().subset(20);
        let seeds = SeedTree::new(60);
        let rt2 = ModelRuntime::new(ModelId::ResNet101, &dataset, &seeds);
        let cfg = CocaConfig::for_model(ModelId::ResNet101);
        let (recovered, info) = CocaServer::recover(&rt2, cfg, &seeds, d).unwrap();
        assert!(info.truncated_bytes > 0);
        assert_eq!(
            recovered.snapshot().to_bytes(),
            want,
            "the torn record never committed, so it must not replay"
        );
    }

    #[test]
    fn recovery_falls_back_to_the_previous_generation() {
        let (rt, mut live) = durable_server(3);
        drive_mixed(&rt, &mut live);
        let want = live.snapshot().to_bytes();
        let mut d = live.detach_durability().unwrap();
        let mut snap = d.storage().load(SNAP_CUR).unwrap();
        snap[10] ^= 0xFF;
        d.storage_mut().save(SNAP_CUR, &snap);

        let dataset = DatasetSpec::ucf101().subset(20);
        let seeds = SeedTree::new(60);
        let rt2 = ModelRuntime::new(ModelId::ResNet101, &dataset, &seeds);
        let cfg = CocaConfig::for_model(ModelId::ResNet101);
        let (recovered, info) = CocaServer::recover(&rt2, cfg, &seeds, d).unwrap();
        assert_eq!(info.source, SnapshotSource::Previous);
        assert_eq!(
            recovered.snapshot().to_bytes(),
            want,
            "previous snapshot + wal.prev + wal.cur must rebuild the same state"
        );
    }

    #[test]
    fn recovery_fails_closed_when_no_generation_validates() {
        let (rt, mut live) = durable_server(3);
        drive_mixed(&rt, &mut live);
        let mut d = live.detach_durability().unwrap();
        for key in [SNAP_CUR, SNAP_PREV] {
            let mut snap = d.storage().load(key).unwrap();
            snap[10] ^= 0xFF;
            d.storage_mut().save(key, &snap);
        }
        let dataset = DatasetSpec::ucf101().subset(20);
        let seeds = SeedTree::new(60);
        let rt2 = ModelRuntime::new(ModelId::ResNet101, &dataset, &seeds);
        let cfg = CocaConfig::for_model(ModelId::ResNet101);
        let err = CocaServer::recover(&rt2, cfg, &seeds, d).unwrap_err();
        assert!(matches!(err, PersistError::NoValidSnapshot));
    }

    #[test]
    fn recovery_rejects_a_mismatched_config() {
        let (rt, mut live) = durable_server(3);
        drive_mixed(&rt, &mut live);
        let d = live.detach_durability().unwrap();
        let dataset = DatasetSpec::ucf101().subset(20);
        let seeds = SeedTree::new(60);
        let rt2 = ModelRuntime::new(ModelId::ResNet101, &dataset, &seeds);
        let cfg = CocaConfig::for_model(ModelId::ResNet101).with_theta(0.02);
        let err = CocaServer::recover(&rt2, cfg, &seeds, d).unwrap_err();
        assert!(matches!(err, PersistError::ConfigMismatch));
    }

    #[test]
    fn injected_crashes_are_transparent_at_every_event_boundary() {
        let (rt, mut reference) = server();
        drive_mixed(&rt, &mut reference);
        let want = reference.snapshot().to_bytes();
        let total = {
            let (rt, mut counter) = durable_server(3);
            drive_mixed(&rt, &mut counter);
            counter.durability().unwrap().events_logged()
        };
        assert!(total >= 6);
        for at_event in 0..total {
            for fault in [
                CrashFault::Clean,
                CrashFault::Torn { keep: 7 },
                CrashFault::SnapCorrupt { byte: 11 },
            ] {
                let (rt, mut server) = server();
                let plan = CrashPlan { at_event, fault };
                server.attach_durability(
                    Durability::new(Box::new(MemStorage::new()), 3).with_crash_plan(plan),
                );
                drive_mixed(&rt, &mut server);
                assert_eq!(
                    server.snapshot().to_bytes(),
                    want,
                    "crash {plan:?} must recover and redeliver transparently"
                );
            }
        }
    }

    #[test]
    fn queued_pending_uploads_survive_recovery() {
        let dataset = DatasetSpec::ucf101().subset(20);
        let seeds = SeedTree::new(64);
        let rt = ModelRuntime::new(ModelId::ResNet101, &dataset, &seeds);
        let cfg = CocaConfig::for_model(ModelId::ResNet101)
            .with_merge_mode(MergeMode::QueueAndFlush)
            .with_flush_policy(FlushPolicy::RoundAligned);
        let mut live = CocaServer::new(&rt, cfg, &seeds);
        live.attach_durability(Durability::new(Box::new(MemStorage::new()), 2));
        live.set_flush_watermark(5);
        live.handle_upload(upload_for(&rt, 0, 3, 10));
        live.handle_upload(upload_for(&rt, 1, 4, 11));
        assert_eq!(live.pending_uploads(), 2);
        let want = live.snapshot().to_bytes();
        let d = live.detach_durability().unwrap();
        let (recovered, _) = CocaServer::recover(&rt, cfg, &seeds, d).unwrap();
        assert_eq!(recovered.pending_uploads(), 2);
        assert_eq!(recovered.snapshot().to_bytes(), want);
        // The recovered queue drains exactly like the live one would.
        let mut recovered = recovered;
        live.handle_upload(upload_for(&rt, 2, 5, 12));
        recovered.handle_upload(upload_for(&rt, 2, 5, 12));
        live.set_flush_watermark(3);
        recovered.set_flush_watermark(3);
        assert_eq!(live.pending_uploads(), 0);
        assert_eq!(recovered.snapshot().to_bytes(), live.snapshot().to_bytes());
    }
}
