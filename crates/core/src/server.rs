//! The CoCa edge server (§IV.A, §IV.B, §IV.D).
//!
//! Maintains the global cache table and global class frequencies, seeds
//! both from a shared dataset, answers cache requests by running ACA and
//! extracting a personalized sub-table, and merges client uploads.

use coca_data::distribution::uniform_weights;
use coca_data::{StreamConfig, StreamGenerator};
use coca_model::{ClientFeatureView, ClientProfile, ModelRuntime};
use coca_sim::{SeedTree, SimDuration};
use rand::Rng;

use crate::aca::{allocate, AcaInputs, AcaOutput};
use crate::config::CocaConfig;
use crate::global::{GlobalCacheTable, MergeScratch};
use crate::lookup::{infer_with_cache, LookupScratch};
use crate::proto::{CacheAllocation, CacheRequest, UpdateUpload};
use crate::semantic::{CacheLayer, LocalCache};

/// Samples per class used to seed the global cache from the shared dataset.
const SEED_SAMPLES_PER_CLASS: usize = 6;

/// Frames used to profile the shared-dataset standalone hit-ratio curve.
const PROFILE_FRAMES: usize = 600;

/// Server-side service-time model (virtual milliseconds): Python-grade
/// allocation and merge costs on the paper's edge server, proportional to
/// the table cells touched.
#[derive(Debug, Clone, Copy)]
pub struct ServiceCostModel {
    /// Fixed cost of handling a cache request (ACA + bookkeeping).
    pub alloc_base_ms: f64,
    /// Additional cost per kilobyte of extracted cache.
    pub alloc_per_kb_ms: f64,
    /// Fixed cost of merging one upload.
    pub update_base_ms: f64,
    /// Additional cost per kilobyte of uploaded table.
    pub update_per_kb_ms: f64,
}

impl Default for ServiceCostModel {
    fn default() -> Self {
        Self {
            alloc_base_ms: 5.0,
            alloc_per_kb_ms: 0.012,
            update_base_ms: 2.5,
            update_per_kb_ms: 0.02,
        }
    }
}

/// The edge server.
#[derive(Debug)]
pub struct CocaServer {
    cfg: CocaConfig,
    global: GlobalCacheTable,
    /// Υ per layer, in ms (model compute only — paper §V.A).
    saved_ms: Vec<f64>,
    /// m_j — bytes per entry per layer.
    entry_bytes: Vec<usize>,
    /// Shared-dataset standalone hit-ratio profile (initial R for clients).
    base_hit_profile: Vec<f64>,
    /// Static allocation reused when dynamic cache allocation is disabled
    /// (the Normal/GCU ablation arms).
    static_alloc: Option<AcaOutput>,
    costs: ServiceCostModel,
    /// Reusable merge buffers: the per-round merge phase allocates
    /// nothing once these are warm.
    scratch: MergeScratch,
}

/// Seeds a global cache table from the shared dataset: averages a few
/// curated clean (undrifted) samples per class per layer — the paper's
/// "server generates the initial cache using the global shared dataset".
///
/// Shared between the CoCa server and cache baselines (SMTM and the
/// replacement-policy harness start from the same initial centroids, so
/// method comparisons isolate the *policy*, not the initialization).
pub fn seed_global_table(rt: &ModelRuntime, seeds: &SeedTree) -> GlobalCacheTable {
    let l = rt.num_cache_points();
    let classes = rt.num_classes();
    let mut global = GlobalCacheTable::new(classes, l);
    let shared_seeds = seeds.child("server-shared");
    let shared_profile = ClientProfile::new(u64::MAX, 0.0, 1.0, &shared_seeds);
    let mut view = ClientFeatureView::new();
    let mut frame_rng = shared_seeds.rng_for("seed-frames");
    let mut seq = 0u64;
    for class in 0..classes {
        let mut sums: Vec<Vec<f32>> = (0..l).map(|j| vec![0.0f32; rt.feature_dim(j)]).collect();
        for s in 0..SEED_SAMPLES_PER_CLASS {
            // Curated clean samples: full class-signal visibility, so
            // seeded centers carry undiminished class components.
            let difficulty = 0.32 + 0.03 * s as f32;
            let frame = coca_data::Frame {
                seq,
                class,
                run_pos: 0,
                difficulty,
                run_difficulty: difficulty,
                frame_seed: frame_rng.gen(),
                run_seed: frame_rng.gen(),
            };
            seq += 1;
            for (j, sum) in sums.iter_mut().enumerate() {
                let v = rt.semantic_vector(&frame, &shared_profile, j, &mut view);
                coca_math::vector::axpy(1.0, &v, sum);
            }
        }
        for (j, sum) in sums.into_iter().enumerate() {
            global.set(class, j, sum);
        }
    }
    // Frequency prior: the shared dataset is balanced.
    global.seed_frequency(&vec![SEED_SAMPLES_PER_CLASS as u64; classes]);
    global
}

/// Profiles the standalone (cumulative) hit-ratio curve of a fully
/// populated cache on the shared dataset — the initial R estimates.
pub fn profile_hit_ratios(
    rt: &ModelRuntime,
    cfg: &CocaConfig,
    global: &GlobalCacheTable,
    seeds: &SeedTree,
) -> Vec<f64> {
    let l = rt.num_cache_points();
    let classes = rt.num_classes();
    let shared_seeds = seeds.child("server-shared");
    let shared_profile = ClientProfile::new(u64::MAX, 0.0, 1.0, &shared_seeds);
    let mut view = ClientFeatureView::new();
    let mut scratch = LookupScratch::new();
    let all_layers: Vec<usize> = (0..l).collect();
    let all_classes: Vec<usize> = (0..classes).collect();
    let profile_cache = global.extract(&all_layers, &all_classes);
    let mut hits = vec![0u64; l];
    let mut prof_gen = StreamGenerator::new(
        StreamConfig::new(uniform_weights(classes), 16.0),
        &shared_seeds.child("profile-stream"),
    );
    for _ in 0..PROFILE_FRAMES {
        let f = prof_gen.next_frame();
        let r = infer_with_cache(
            rt,
            &shared_profile,
            &f,
            &profile_cache,
            cfg,
            &mut view,
            &mut scratch,
        );
        if let Some(p) = r.hit_point {
            hits[p] += 1;
        }
    }
    let mut base_hit_profile = Vec::with_capacity(l);
    let mut cumulative = 0.0f64;
    for &h in &hits {
        // A ratio, so never above 1; the clamp guards against the float
        // accumulation creeping past it when every profile frame hits.
        cumulative = (cumulative + h as f64 / PROFILE_FRAMES as f64).min(1.0);
        base_hit_profile.push(cumulative);
    }
    base_hit_profile
}

impl CocaServer {
    /// Builds the server: seeds the global cache and frequency prior from
    /// the shared dataset and profiles the initial hit-ratio curve.
    pub fn new(rt: &ModelRuntime, cfg: CocaConfig, seeds: &SeedTree) -> Self {
        cfg.validate().expect("invalid CoCa configuration");
        let l = rt.num_cache_points();
        let global = seed_global_table(rt, seeds);
        let saved_ms: Vec<f64> = (0..l)
            .map(|j| rt.saved_if_hit_at(j).as_millis_f64())
            .collect();
        let entry_bytes: Vec<usize> = (0..l).map(|j| rt.entry_bytes(j)).collect();
        let base_hit_profile = profile_hit_ratios(rt, &cfg, &global, seeds);

        Self {
            cfg,
            global,
            saved_ms,
            entry_bytes,
            base_hit_profile,
            static_alloc: None,
            costs: ServiceCostModel::default(),
            scratch: MergeScratch::new(),
        }
    }

    /// Overrides the service-cost model (load experiments).
    pub fn set_costs(&mut self, costs: ServiceCostModel) {
        self.costs = costs;
    }

    /// The shared-dataset standalone hit-ratio profile — handed to newly
    /// booted clients as their initial R.
    pub fn base_hit_profile(&self) -> &[f64] {
        &self.base_hit_profile
    }

    /// Read access to the global table (tests, Fig. 2 experiment).
    pub fn global(&self) -> &GlobalCacheTable {
        &self.global
    }

    /// Handles a cache request: runs ACA (or the static fallback when DCA
    /// is disabled) and extracts the personalized sub-table. Returns the
    /// allocation and the server compute charged to the queue.
    pub fn handle_request(&mut self, req: &CacheRequest) -> (CacheAllocation, SimDuration) {
        let decision = if self.cfg.enable_dca {
            allocate(
                &self.cfg,
                &AcaInputs {
                    global_freq: self.global.frequency(),
                    timestamps: &req.timestamps,
                    hit_ratio: &req.hit_ratio,
                    saved_ms: &self.saved_ms,
                    entry_bytes: &self.entry_bytes,
                    budget_bytes: req.budget_bytes as usize,
                },
            )
        } else {
            // Static allocation: all classes, layers chosen once from the
            // shared-dataset profile under the same budget.
            self.static_alloc
                .get_or_insert_with(|| {
                    let all: Vec<u32> = vec![0; self.global.num_classes()];
                    let _ = &all; // clarity: hot set = every class
                    let hot: Vec<usize> = (0..self.global.num_classes()).collect();
                    let layers = crate::aca::select_layers(
                        &self.cfg,
                        &AcaInputs {
                            global_freq: self.global.frequency(),
                            timestamps: &vec![0; self.global.num_classes()],
                            hit_ratio: &self.base_hit_profile,
                            saved_ms: &self.saved_ms,
                            entry_bytes: &self.entry_bytes,
                            budget_bytes: req.budget_bytes as usize,
                        },
                        hot.len(),
                    );
                    AcaOutput {
                        hot_classes: hot,
                        layers,
                    }
                })
                .clone()
        };

        let mut layers = decision.layers.clone();
        layers.sort_unstable();
        let cache = self.global.extract(&layers, &decision.hot_classes);
        let kb = cache.total_bytes() as f64 / 1024.0;
        let service = SimDuration::from_millis_f64(
            self.costs.alloc_base_ms + self.costs.alloc_per_kb_ms * kb,
        );
        (
            CacheAllocation {
                round: req.round,
                cache,
            },
            service,
        )
    }

    /// Merges one client upload (global cache updates, Eq. 4/5). When GCU
    /// is disabled only the frequency vector advances (ACA still needs Φ).
    pub fn handle_update(&mut self, up: &UpdateUpload) -> SimDuration {
        let kb = up.table.wire_bytes() as f64 / 1024.0;
        if self.cfg.enable_gcu {
            self.global.merge_update(
                &up.table,
                &up.frequency,
                self.cfg.gamma_global,
                &mut self.scratch,
            );
        } else {
            self.global.advance_frequency(&up.frequency);
        }
        SimDuration::from_millis_f64(self.costs.update_base_ms + self.costs.update_per_kb_ms * kb)
    }

    /// Batched round processing: drains a round's queued uploads in one
    /// per-layer batched pass over the global table (each layer's store
    /// streams through cache once for the whole fleet). Uploads are
    /// ordered by `(client_id, round)` first — the deterministic batching
    /// contract — and the result is **bit-identical** to calling
    /// [`CocaServer::handle_update`] per upload in that order
    /// (property-tested), which is what makes per-layer server sharding
    /// safe. Returns the summed service time, priced by the same cost
    /// model as the sequential path.
    pub fn handle_updates_batch(&mut self, ups: &mut [UpdateUpload]) -> SimDuration {
        ups.sort_by_key(|u| (u.client_id, u.round));
        let mut total_kb = 0.0f64;
        for up in ups.iter() {
            total_kb += up.table.wire_bytes() as f64 / 1024.0;
        }
        if self.cfg.enable_gcu {
            let batch: Vec<(&crate::collect::UpdateTable, &[u64])> = ups
                .iter()
                .map(|u| (&u.table, u.frequency.as_slice()))
                .collect();
            self.global
                .merge_batch(&batch, self.cfg.gamma_global, &mut self.scratch);
        } else {
            for up in ups.iter() {
                self.global.advance_frequency(&up.frequency);
            }
        }
        SimDuration::from_millis_f64(
            self.costs.update_base_ms * ups.len() as f64 + self.costs.update_per_kb_ms * total_kb,
        )
    }

    /// Fires when a client departs the fleet: applies the configured
    /// exponential Φ decay `Φ ← ⌈β·Φ⌉` so the leaver's frequency mass
    /// ages out of ACA's hot-spot scores (a no-op at the default β = 1).
    pub fn on_client_leave(&mut self) {
        if self.cfg.leave_phi_decay < 1.0 {
            self.global.decay_frequency(self.cfg.leave_phi_decay);
        }
    }

    /// Builds a cache holding *every* class at *every* layer (motivation
    /// experiments; not used in normal operation).
    pub fn full_cache(&self) -> LocalCache {
        let layers: Vec<usize> = (0..self.global.num_layers()).collect();
        let classes: Vec<usize> = (0..self.global.num_classes()).collect();
        self.global.extract(&layers, &classes)
    }

    /// Builds a cache with the given layers and classes straight from the
    /// global table (motivation experiments and baselines).
    pub fn cache_for(&self, layers: &[usize], classes: &[usize]) -> LocalCache {
        self.global.extract(layers, classes)
    }

    /// A single fully-populated layer (replacement-policy baselines).
    pub fn layer_snapshot(&self, point: usize, classes: &[usize]) -> CacheLayer {
        let mut l = CacheLayer::new(point);
        for &c in classes {
            if let Some(v) = self.global.get(c, point) {
                l.insert(c, v.to_vec());
            }
        }
        l
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coca_data::DatasetSpec;
    use coca_model::ModelId;

    fn server() -> (ModelRuntime, CocaServer) {
        let dataset = DatasetSpec::ucf101().subset(20);
        let seeds = SeedTree::new(60);
        let rt = ModelRuntime::new(ModelId::ResNet101, &dataset, &seeds);
        let cfg = CocaConfig::for_model(ModelId::ResNet101);
        let server = CocaServer::new(&rt, cfg, &seeds);
        (rt, server)
    }

    #[test]
    fn seeding_populates_global_cache() {
        let (_, server) = server();
        assert!(
            server.global().fill_ratio() > 0.95,
            "fill {}",
            server.global().fill_ratio()
        );
        assert!(server.global().frequency().iter().all(|&f| f > 0));
    }

    #[test]
    fn base_hit_profile_is_cumulative_and_nontrivial() {
        let (_, server) = server();
        let prof = server.base_hit_profile();
        assert!(
            prof.windows(2).all(|w| w[1] + 1e-12 >= w[0]),
            "must be non-decreasing"
        );
        let last = *prof.last().unwrap();
        assert!(last > 0.3, "overall hit ratio on shared data {last}");
        assert!(last <= 1.0);
    }

    #[test]
    fn request_yields_budgeted_allocation() {
        let (rt, mut server) = server();
        let req = CacheRequest {
            client_id: 0,
            round: 0,
            timestamps: vec![0; rt.num_classes()],
            hit_ratio: server.base_hit_profile().to_vec(),
            budget_bytes: 48 * 1024,
        };
        let (alloc, service) = server.handle_request(&req);
        assert!(!alloc.cache.is_empty());
        assert!(alloc.cache.total_bytes() <= 48 * 1024);
        assert!(service.as_millis_f64() > 0.0);
    }

    #[test]
    fn updates_move_the_global_table_only_with_gcu() {
        let (rt, mut server) = server();
        let layer = 10usize;
        let before = server.global().get(3, layer).unwrap().to_vec();
        let mut table = crate::collect::UpdateTable::new();
        // Push an orthogonal-ish direction with overwhelming frequency.
        let mut v = vec![0.0f32; rt.feature_dim(layer)];
        v[0] = 1.0;
        table.absorb(3, layer, &v, 0.0);
        let mut phi = vec![0u64; rt.num_classes()];
        phi[3] = 100_000;
        let up = UpdateUpload {
            client_id: 0,
            round: 0,
            table,
            frequency: phi,
        };
        server.handle_update(&up);
        let after = server.global().get(3, layer).unwrap().to_vec();
        assert!(
            coca_math::cosine(&before, &after) < 0.999,
            "entry did not move"
        );
        assert!(server.global().frequency()[3] > 100_000);
    }

    #[test]
    fn dca_off_gives_static_all_class_allocation() {
        let dataset = DatasetSpec::ucf101().subset(20);
        let seeds = SeedTree::new(61);
        let rt = ModelRuntime::new(ModelId::ResNet101, &dataset, &seeds);
        let mut cfg = CocaConfig::for_model(ModelId::ResNet101);
        cfg.enable_dca = false;
        let mut server = CocaServer::new(&rt, cfg, &seeds);
        // Heavily skewed timestamps would shrink a dynamic hot set; the
        // static path must ignore them.
        let mut tau = vec![1_000_000u32; rt.num_classes()];
        tau[0] = 0;
        let req = CacheRequest {
            client_id: 0,
            round: 0,
            timestamps: tau,
            hit_ratio: server.base_hit_profile().to_vec(),
            budget_bytes: 64 * 1024,
        };
        let (alloc, _) = server.handle_request(&req);
        for l in alloc.cache.layers() {
            assert_eq!(
                l.len(),
                rt.num_classes(),
                "static allocation caches all classes"
            );
        }
    }
}
