//! Adaptive Cache Allocation — Algorithm 1 of the paper (§V.B).
//!
//! Stage 1 (hot-spot classes): score every class by global frequency ×
//! recency decay (Eq. 10)
//!
//! ```text
//! s_i = Φ_i · 0.2^⌊τ_i / F⌋
//! ```
//!
//! sort descending, and keep the shortest prefix holding ≥ 95 % of the
//! total score mass.
//!
//! Stage 2 (cache layers): estimate each layer's expected latency benefit
//! as `ζ_j = Υ_j · R_j` (saved compute × expected hit ratio) and greedily
//! take the best layer while the allocation fits the memory budget Π.
//! After selecting layer `b`, deflate `R_j` for `j ≥ b` by `R_b` — the
//! paper's hypothesis that samples hitting at `b` would also have hit at
//! any deeper layer, so deeper layers should only be credited for the
//! *additional* mass they capture.

use serde::{Deserialize, Serialize};

use crate::config::CocaConfig;

/// Inputs to one allocation decision for one client.
#[derive(Debug, Clone)]
pub struct AcaInputs<'a> {
    /// Φ — global class frequencies (server state).
    pub global_freq: &'a [u64],
    /// τ — this client's class timestamps.
    pub timestamps: &'a [u32],
    /// R — expected standalone hit ratio per preset cache layer.
    pub hit_ratio: &'a [f64],
    /// Υ — model compute saved by a hit at each layer, in milliseconds.
    pub saved_ms: &'a [f64],
    /// m_j — bytes of one entry at each layer.
    pub entry_bytes: &'a [usize],
    /// Π — the client's cache budget in bytes.
    pub budget_bytes: usize,
}

/// The allocation decision.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AcaOutput {
    /// Hot-spot classes (descending score order).
    pub hot_classes: Vec<usize>,
    /// Selected cache layers (selection order — by expected benefit).
    pub layers: Vec<usize>,
}

impl AcaOutput {
    /// Total bytes this allocation occupies given per-layer entry sizes.
    pub fn bytes(&self, entry_bytes: &[usize]) -> usize {
        self.layers
            .iter()
            .map(|&j| entry_bytes[j] * self.hot_classes.len())
            .sum()
    }

    /// Dense indicator matrix X (row-major classes × layers), as in the
    /// paper's problem formulation (Eq. 9).
    pub fn indicator(&self, num_classes: usize, num_layers: usize) -> Vec<bool> {
        let mut x = vec![false; num_classes * num_layers];
        for &c in &self.hot_classes {
            for &j in &self.layers {
                x[c * num_layers + j] = true;
            }
        }
        x
    }
}

/// Stage 1: hot-spot class selection (Algorithm 1 lines 1–10).
///
/// Falls back to *all* classes when every score is zero (cold start before
/// any frequency information exists).
pub fn select_hot_classes(cfg: &CocaConfig, inputs: &AcaInputs<'_>) -> Vec<usize> {
    let n = inputs.global_freq.len();
    assert_eq!(inputs.timestamps.len(), n, "τ length mismatch");
    let f = cfg.round_frames as f64;
    let scores: Vec<f64> = inputs
        .global_freq
        .iter()
        .zip(inputs.timestamps)
        .map(|(&phi, &tau)| {
            let staleness = (tau as f64 / f).floor();
            phi as f64 * cfg.recency_base.powf(staleness)
        })
        .collect();
    let total: f64 = scores.iter().sum();
    if total <= 0.0 {
        return (0..n).collect();
    }
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]).then(a.cmp(&b)));
    let mut hot = Vec::new();
    let mut acc = 0.0;
    for i in order {
        hot.push(i);
        acc += scores[i];
        if acc >= total * cfg.hotspot_mass {
            break;
        }
    }
    hot
}

/// Stage 2: greedy benefit-ordered layer selection (Algorithm 1 lines
/// 11–21) under the byte budget.
pub fn select_layers(cfg: &CocaConfig, inputs: &AcaInputs<'_>, num_hot: usize) -> Vec<usize> {
    let l = inputs.hit_ratio.len();
    assert_eq!(inputs.saved_ms.len(), l, "Υ length mismatch");
    assert_eq!(inputs.entry_bytes.len(), l, "entry size length mismatch");
    if num_hot == 0 {
        return Vec::new();
    }
    let mut r: Vec<f64> = inputs.hit_ratio.to_vec();
    let mut chosen = vec![false; l];
    let mut layers = Vec::new();
    let mut used_bytes = 0usize;
    loop {
        // ζ = Υ ⊙ R over unchosen layers, optionally normalized by the
        // layer's memory cost (budgeted greedy).
        let mut best: Option<(usize, f64)> = None;
        for j in 0..l {
            if chosen[j] {
                continue;
            }
            let mut zeta = inputs.saved_ms[j] * r[j].max(0.0);
            if cfg.aca_per_byte {
                zeta /= inputs.entry_bytes[j].max(1) as f64;
            }
            if zeta > 0.0 && best.is_none_or(|(_, bz)| zeta > bz) {
                best = Some((j, zeta));
            }
        }
        let Some((b, _)) = best else { break };
        let add = inputs.entry_bytes[b] * num_hot;
        if used_bytes + add > inputs.budget_bytes {
            // Algorithm 1 lines 14–16: stop just before exceeding Π.
            break;
        }
        used_bytes += add;
        chosen[b] = true;
        layers.push(b);
        if cfg.aca_deflation {
            // Lines 19–21: deeper layers only get credit for extra mass.
            let p = r[b];
            for rj in r.iter_mut().skip(b) {
                *rj = (*rj - p).max(0.0);
            }
        } else {
            r[b] = 0.0;
        }
    }
    layers
}

/// The full two-stage allocation (Algorithm 1).
pub fn allocate(cfg: &CocaConfig, inputs: &AcaInputs<'_>) -> AcaOutput {
    let hot_classes = select_hot_classes(cfg, inputs);
    let layers = select_layers(cfg, inputs, hot_classes.len());
    AcaOutput {
        hot_classes,
        layers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coca_model::ModelId;

    fn cfg() -> CocaConfig {
        CocaConfig::for_model(ModelId::ResNet101)
    }

    fn inputs<'a>(
        freq: &'a [u64],
        tau: &'a [u32],
        r: &'a [f64],
        upsilon: &'a [f64],
        bytes: &'a [usize],
        budget: usize,
    ) -> AcaInputs<'a> {
        AcaInputs {
            global_freq: freq,
            timestamps: tau,
            hit_ratio: r,
            saved_ms: upsilon,
            entry_bytes: bytes,
            budget_bytes: budget,
        }
    }

    #[test]
    fn hot_classes_follow_frequency_and_recency() {
        let cfg = cfg();
        let freq = [1000u64, 1000, 10, 10];
        // Class 1 was last seen 3 rounds ago: decays by 0.2³ = 0.008.
        let tau = [0u32, 900, 0, 900];
        let r = [0.5];
        let u = [10.0];
        let b = [100usize];
        let inp = inputs(&freq, &tau, &r, &u, &b, 1000);
        let hot = select_hot_classes(&cfg, &inp);
        // Scores: 1000, 8, 10, 0.08 → class 0 alone holds 98 % ≥ 95 %.
        assert_eq!(hot, vec![0]);
    }

    #[test]
    fn hot_classes_cover_the_mass_threshold() {
        let cfg = cfg();
        let freq = [100u64; 10];
        let tau = [0u32; 10];
        let r = [0.5];
        let u = [10.0];
        let b = [100usize];
        let hot = select_hot_classes(&cfg, &inputs(&freq, &tau, &r, &u, &b, 0));
        // Uniform scores: need ⌈0.95·10⌉ = 10 classes to reach 95 %.
        assert_eq!(hot.len(), 10);
    }

    #[test]
    fn cold_start_selects_all_classes() {
        let cfg = cfg();
        let freq = [0u64; 5];
        let tau = [u32::MAX / 2; 5];
        let r = [0.5];
        let u = [10.0];
        let b = [100usize];
        let hot = select_hot_classes(&cfg, &inputs(&freq, &tau, &r, &u, &b, 0));
        assert_eq!(hot.len(), 5);
    }

    #[test]
    fn layers_are_picked_by_benefit_within_budget() {
        let cfg = cfg();
        let freq = [10u64; 2];
        let tau = [0u32; 2];
        // Layer 1 has the best Υ·R product; layer 0 second; layer 2 last.
        let r = [0.30, 0.50, 0.40];
        let u = [10.0, 9.0, 2.0];
        let bytes = [100usize, 100, 100];
        // Budget for exactly two layers × 2 hot classes.
        let inp = inputs(&freq, &tau, &r, &u, &bytes, 400);
        let out = allocate(&cfg, &inp);
        assert_eq!(out.hot_classes.len(), 2);
        assert_eq!(out.layers, vec![1, 0]);
        assert!(out.bytes(&bytes) <= 400);
    }

    #[test]
    fn deflation_redirects_to_shallower_layers() {
        // Two adjacent deep layers with nearly identical high R: with
        // deflation the second pick should NOT be the neighbour (its extra
        // mass is tiny) but the shallow layer with independent mass.
        let mut cfg = cfg();
        let freq = [10u64];
        let tau = [0u32];
        let r = [0.30, 0.55, 0.56];
        let u = [6.0, 4.0, 3.9];
        let bytes = [10usize, 10, 10];
        let inp = inputs(&freq, &tau, &r, &u, &bytes, 10_000);
        cfg.aca_deflation = true;
        let with = select_layers(&cfg, &inp, 1);
        // First pick: layer 2 (0.56·3.9 = 2.184) vs layer 1 (2.2) — layer 1
        // wins narrowly; after deflation layer 2 keeps only 0.01 mass, so
        // layer 0 comes next.
        assert_eq!(with[0], 1);
        assert_eq!(with[1], 0);
        cfg.aca_deflation = false;
        let without = select_layers(&cfg, &inp, 1);
        assert_eq!(without[0], 1);
        assert_eq!(
            without[1], 2,
            "without deflation the twin layer is double-counted"
        );
    }

    #[test]
    fn budget_is_a_hard_cap() {
        let cfg = cfg();
        let freq = [10u64; 4];
        let tau = [0u32; 4];
        let r = [0.5; 6];
        let u = [10.0, 9.0, 8.0, 7.0, 6.0, 5.0];
        let bytes = [128usize; 6];
        for budget in [0usize, 100, 512, 1024, 3000, 100_000] {
            let inp = inputs(&freq, &tau, &r, &u, &bytes, budget);
            let out = allocate(&cfg, &inp);
            assert!(
                out.bytes(&bytes) <= budget,
                "allocation {} exceeds budget {budget}",
                out.bytes(&bytes)
            );
        }
    }

    #[test]
    fn zero_budget_allocates_nothing() {
        let cfg = cfg();
        let freq = [10u64; 2];
        let tau = [0u32; 2];
        let r = [0.9, 0.9];
        let u = [10.0, 10.0];
        let bytes = [100usize, 100];
        let out = allocate(&cfg, &inputs(&freq, &tau, &r, &u, &bytes, 0));
        assert!(out.layers.is_empty());
        assert!(!out.hot_classes.is_empty());
    }

    #[test]
    fn indicator_matrix_shape() {
        let out = AcaOutput {
            hot_classes: vec![0, 2],
            layers: vec![1],
        };
        let x = out.indicator(3, 2);
        assert_eq!(x, vec![false, true, false, false, false, true]);
    }
}
