//! Declarative dynamic scenarios: [`ScenarioSpec`].
//!
//! The paper evaluates a *static* fleet: every client boots once, shares
//! one WiFi link and samples a frozen popularity distribution. A
//! [`ScenarioSpec`] promotes that implicit world into data — a base
//! workload ([`ScenarioConfig`]) plus a **timeline** of dynamics events —
//! so any experiment (churn, popularity drift, per-client link
//! degradation) is a JSON document instead of bespoke engine code.
//!
//! ## Event semantics and the fairness invariant
//!
//! The engine's cross-method fairness invariant — every method consumes
//! byte-identical frame streams, proven by the order-independent frame
//! digest — must survive dynamics. Methods traverse the same streams at
//! *different virtual-time rates*, so any event that changes **which
//! frames exist** must be keyed in client-progress space, while events
//! that only change **costs** can be keyed in virtual time:
//!
//! * [`JoinEvent`] (virtual time): a new client boots mid-run at `at_ms`
//!   and executes its own `rounds` rounds. The joiner's stream content
//!   depends only on its client index, never on the join instant.
//! * [`LeaveEvent`] (client progress): the client departs at the end of
//!   its `after_rounds`-th round — at whatever virtual instant it reaches
//!   that boundary. Its goodbye upload and any in-flight request/reply
//!   pairs drain through the server FIFO.
//! * [`PopularityShiftEvent`] (client progress): from stream frame
//!   `at_frame` onward the affected clients sample a transformed
//!   popularity (rotated head, explicit weights, or a seeded
//!   permutation). Compiled into piecewise schedules inside
//!   [`StreamGenerator`](coca_data::StreamGenerator).
//! * [`LinkChangeEvent`] (virtual time): from `at_ms` onward the affected
//!   clients' traffic is priced by a different [`LinkModel`], resolved at
//!   event-emission time.
//! * [`MigrateEvent`] (client progress): the client re-homes from its
//!   current server cell to `to_cell` at the end of its
//!   `after_rounds`-th round — the goodbye upload of the finished round
//!   still drains through the *old* cell's FIFO, the next cache request
//!   re-allocates at the new one. Requires a [`TopologySpec`].
//!
//! ## Multi-edge topology
//!
//! The optional [`TopologySpec`] replaces the implicit single server
//! with N collaborating server cells: each client is assigned to a
//! cell, each cell may override the client↔cell link, and cells
//! periodically exchange table deltas over a priced `peer_link`
//! (hub-and-spoke or gossip, see [`SyncMode`]). A one-cell topology —
//! and a spec with no topology at all — materializes a `DrivePlan`
//! byte-identical to the classic single-server path.
//!
//! A spec with an empty timeline and uniform links reproduces the static
//! engine bit for bit (asserted by tests).

use coca_data::PopularityPhase;
use coca_net::{LinkModel, LinkSchedule, TESTBED_BOOT_WINDOW_MS};
use coca_sim::{SeedTree, SimTime};
use serde::{Deserialize, Serialize};

use crate::driver::{
    DrivePlan, MemberPlan, MigrationPlan, TopologyPlan, DEFAULT_METRICS_WINDOW_MS,
};
use crate::engine::{Scenario, ScenarioConfig};

/// A new client joining the fleet mid-run.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct JoinEvent {
    /// Virtual boot instant (ms).
    pub at_ms: f64,
    /// Rounds the joiner executes (each `frames_per_round` frames).
    pub rounds: usize,
}

/// A client departing before the run's natural end.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct LeaveEvent {
    /// The departing client (base-fleet index, or a joiner's index).
    pub client: usize,
    /// The client departs at the end of this round (1-based count of
    /// completed rounds; values ≥ the client's round budget are no-ops).
    pub after_rounds: usize,
}

/// How a popularity shift transforms the current class weights.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum PopularityShift {
    /// Rotate the weight vector: the weight of class `c` moves to class
    /// `(c + n) mod C` — the long-tail head slides to new classes.
    Rotate(usize),
    /// Replace the weights outright (length must match the class count;
    /// normalized internally).
    Replace(Vec<f64>),
    /// Permute the weights with a deterministic shuffle drawn from this
    /// seed — a "re-draw" of which classes are hot.
    Permute(u64),
}

/// A popularity shift applied to one client or the whole fleet.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PopularityShiftEvent {
    /// Target client (`None` = every client, joiners included).
    pub client: Option<usize>,
    /// First stream frame (per-client sequence number) the shifted
    /// popularity governs.
    pub at_frame: u64,
    /// The transformation.
    pub shift: PopularityShift,
}

/// A link change applied to one client or the whole fleet.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LinkChangeEvent {
    /// Target client (`None` = every client, joiners included).
    pub client: Option<usize>,
    /// Virtual instant (ms) the new link takes effect.
    pub at_ms: f64,
    /// The link model in force from `at_ms` onward.
    pub link: LinkModel,
}

/// A per-client device speed: how many frames the client processes per
/// round. Heterogeneous speeds model mixed fleets (paper §V runs uniform
/// Jetson TX2 clients; a deployment mixes dashcams and road-side units).
/// This is *plan structure*, not a timed event: it applies for the whole
/// run, and a member's round boundary — hence its upload/request cadence —
/// comes at its own frame count. Later entries targeting the same client
/// overwrite earlier ones.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct DeviceSpeedEvent {
    /// Target client (`None` = every client, joiners included).
    pub client: Option<usize>,
    /// Frames per round for the target (replaces the spec-wide
    /// `frames_per_round`).
    pub frames_per_round: usize,
}

/// A client re-homing from its current server cell to another — the
/// multi-edge handover. Keyed in client progress (like [`LeaveEvent`])
/// so the frame digest is method-independent: the goodbye upload of the
/// finished round drains at the old cell, the next cache request
/// re-allocates from the new cell's merged view.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct MigrateEvent {
    /// The migrating client (base-fleet index, or a joiner's index).
    pub client: usize,
    /// The handover happens at the end of this round (1-based count of
    /// completed rounds; values ≥ the client's round budget are no-ops).
    pub after_rounds: usize,
    /// Destination cell index in the spec's [`TopologySpec`].
    pub to_cell: usize,
}

/// How cells exchange table deltas at each sync tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SyncMode {
    /// Spokes push their deltas to cell 0 (the hub); once every spoke's
    /// delta has arrived the hub merges them in cell-id order and pushes
    /// the combined delta back out. Two peer-link hops end-to-end.
    HubAndSpoke,
    /// Ring gossip: cell `i` pushes its delta to cell `(i+1) mod N`.
    /// One hop per tick; knowledge takes `N-1` ticks to circulate.
    Gossip,
}

/// One server cell in a multi-edge topology.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CellSpec {
    /// Client↔cell link override. `None` keeps each client's own link
    /// schedule (base link + `LinkChange` events) — the choice that
    /// makes a one-cell topology bit-identical to the legacy path.
    pub link: Option<LinkModel>,
}

/// A topology of collaborating server cells. Absent (`None` on the
/// spec) means the classic single server.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TopologySpec {
    /// The server cells; index is the cell id.
    pub cells: Vec<CellSpec>,
    /// Client→cell assignment by client index. Clients beyond the
    /// vector's length (e.g. joiners) default to cell 0.
    pub assignment: Vec<usize>,
    /// Cell↔cell link pricing peer-sync traffic.
    pub peer_link: LinkModel,
    /// Peer-sync period (virtual ms). `None` disables syncing — cells
    /// evolve independently from the shared genesis table.
    pub sync_period_ms: Option<f64>,
    /// Delta exchange pattern.
    pub sync_mode: SyncMode,
}

impl TopologySpec {
    /// `cells` cells with round-robin client assignment, the testbed
    /// peer link, and syncing disabled.
    pub fn uniform(cells: usize, clients: usize) -> Self {
        Self {
            cells: vec![CellSpec { link: None }; cells.max(1)],
            assignment: (0..clients).map(|k| k % cells.max(1)).collect(),
            peer_link: LinkModel::testbed(),
            sync_period_ms: None,
            sync_mode: SyncMode::Gossip,
        }
    }

    /// Builder: enables periodic peer sync.
    pub fn with_sync(mut self, period_ms: f64, mode: SyncMode) -> Self {
        self.sync_period_ms = Some(period_ms);
        self.sync_mode = mode;
        self
    }

    /// Number of cells.
    pub fn num_cells(&self) -> usize {
        self.cells.len()
    }

    /// The cell client `k` starts on (unassigned tail → cell 0).
    pub fn cell_of(&self, k: usize) -> usize {
        self.assignment.get(k).copied().unwrap_or(0)
    }
}

/// One timeline entry.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum ScenarioEvent {
    /// Client churn: arrival.
    Join(JoinEvent),
    /// Client churn: departure.
    Leave(LeaveEvent),
    /// Popularity drift.
    PopularityShift(PopularityShiftEvent),
    /// Connectivity dynamics.
    LinkChange(LinkChangeEvent),
    /// Heterogeneous device speed (per-client `frames_per_round`).
    DeviceSpeed(DeviceSpeedEvent),
    /// Multi-edge handover: a client re-homes to another cell.
    Migrate(MigrateEvent),
}

/// Upper bound on any timeline instant (ms): ~11.5 virtual days. Keeps a
/// hostile or typo'd JSON spec from scheduling events (and thereby
/// windowed-metrics buckets) astronomically far into virtual time.
pub const MAX_EVENT_MS: f64 = 1.0e9;

/// A fully declarative dynamic scenario: base workload, engine lengths,
/// network defaults and a timeline of dynamics events. Serializable to
/// JSON (`coca-bench`'s `exp_scenario` binary runs one from a file).
#[derive(Debug, Clone, Deserialize)]
pub struct ScenarioSpec {
    /// The base workload (model, dataset, base fleet size, popularity,
    /// drift, seed).
    pub scenario: ScenarioConfig,
    /// Rounds each base-fleet client executes.
    pub rounds: usize,
    /// Frames per round (identical for every method).
    pub frames_per_round: usize,
    /// Base-fleet boot window (ms).
    pub boot_window_ms: f64,
    /// Link every client starts on.
    pub base_link: LinkModel,
    /// Width of the windowed-metrics buckets (ms).
    pub metrics_window_ms: f64,
    /// Dynamics events. Order only matters among `PopularityShift`s with
    /// equal `at_frame` targeting the same client (later entries compose
    /// on top) and among `Join`s (arrival order assigns client indices).
    pub timeline: Vec<ScenarioEvent>,
    /// Multi-edge server topology. `None` = the classic single server.
    pub topology: Option<TopologySpec>,
}

// Hand-written so the `topology` key is *omitted* (not `null`) when
// absent: every spec committed before the multi-edge refactor keeps its
// exact bytes under the regeneration gate. Deserialization stays
// derived — the shim reads a missing key as `Null`, which an `Option`
// field accepts as `None`.
impl Serialize for ScenarioSpec {
    fn to_value(&self) -> serde::Value {
        let mut m = serde::Map::new();
        m.insert("scenario".into(), self.scenario.to_value());
        m.insert("rounds".into(), self.rounds.to_value());
        m.insert("frames_per_round".into(), self.frames_per_round.to_value());
        m.insert("boot_window_ms".into(), self.boot_window_ms.to_value());
        m.insert("base_link".into(), self.base_link.to_value());
        m.insert(
            "metrics_window_ms".into(),
            self.metrics_window_ms.to_value(),
        );
        m.insert("timeline".into(), self.timeline.to_value());
        if let Some(t) = &self.topology {
            m.insert("topology".into(), t.to_value());
        }
        serde::Value::Object(m)
    }
}

impl ScenarioSpec {
    /// A static spec: empty timeline, shared-testbed link and boot window.
    /// Materializing it reproduces the classic engine bit for bit.
    pub fn new(scenario: ScenarioConfig, rounds: usize, frames_per_round: usize) -> Self {
        Self {
            scenario,
            rounds,
            frames_per_round,
            boot_window_ms: TESTBED_BOOT_WINDOW_MS,
            base_link: LinkModel::testbed(),
            metrics_window_ms: DEFAULT_METRICS_WINDOW_MS,
            timeline: Vec::new(),
            topology: None,
        }
    }

    /// Builder: attaches a multi-edge [`TopologySpec`].
    pub fn topology(mut self, t: TopologySpec) -> Self {
        self.topology = Some(t);
        self
    }

    /// Builder: appends a [`MigrateEvent`].
    pub fn migrate(mut self, client: usize, after_rounds: usize, to_cell: usize) -> Self {
        self.timeline.push(ScenarioEvent::Migrate(MigrateEvent {
            client,
            after_rounds,
            to_cell,
        }));
        self
    }

    /// Builder: appends a [`JoinEvent`]; the joiner's client index is
    /// `base fleet size + number of joins listed before it`.
    pub fn join(mut self, at_ms: f64, rounds: usize) -> Self {
        self.timeline
            .push(ScenarioEvent::Join(JoinEvent { at_ms, rounds }));
        self
    }

    /// Builder: appends a [`LeaveEvent`].
    pub fn leave(mut self, client: usize, after_rounds: usize) -> Self {
        self.timeline.push(ScenarioEvent::Leave(LeaveEvent {
            client,
            after_rounds,
        }));
        self
    }

    /// Builder: appends a [`PopularityShiftEvent`].
    pub fn popularity_shift(
        mut self,
        client: Option<usize>,
        at_frame: u64,
        shift: PopularityShift,
    ) -> Self {
        self.timeline
            .push(ScenarioEvent::PopularityShift(PopularityShiftEvent {
                client,
                at_frame,
                shift,
            }));
        self
    }

    /// Builder: appends a [`DeviceSpeedEvent`].
    pub fn device_speed(mut self, client: Option<usize>, frames_per_round: usize) -> Self {
        self.timeline
            .push(ScenarioEvent::DeviceSpeed(DeviceSpeedEvent {
                client,
                frames_per_round,
            }));
        self
    }

    /// Builder: appends a [`LinkChangeEvent`].
    pub fn link_change(mut self, client: Option<usize>, at_ms: f64, link: LinkModel) -> Self {
        self.timeline
            .push(ScenarioEvent::LinkChange(LinkChangeEvent {
                client,
                at_ms,
                link,
            }));
        self
    }

    /// Number of joiners in the timeline.
    pub fn num_joins(&self) -> usize {
        self.timeline
            .iter()
            .filter(|e| matches!(e, ScenarioEvent::Join(_)))
            .count()
    }

    /// Total fleet size over the whole run: base fleet plus joiners.
    pub fn total_clients(&self) -> usize {
        self.scenario.num_clients + self.num_joins()
    }

    /// Structural validation with a readable error (used by the JSON
    /// entry points before materializing).
    pub fn validate(&self) -> Result<(), String> {
        if self.rounds == 0 || self.frames_per_round == 0 {
            return Err("rounds and frames_per_round must be positive".into());
        }
        if !(self.boot_window_ms.is_finite() && self.boot_window_ms >= 0.0) {
            return Err(format!("bad boot window {}", self.boot_window_ms));
        }
        if !(self.metrics_window_ms.is_finite() && self.metrics_window_ms > 0.0) {
            return Err(format!("bad metrics window {}", self.metrics_window_ms));
        }
        let classes = self.scenario.dataset.num_classes;
        let total = self.total_clients();
        let num_cells = self.topology.as_ref().map_or(1, TopologySpec::num_cells);
        if let Some(t) = &self.topology {
            if t.cells.is_empty() {
                return Err("topology must have at least one cell".into());
            }
            if t.assignment.len() > total {
                return Err(format!(
                    "topology assigns {} clients, fleet has {total}",
                    t.assignment.len()
                ));
            }
            for (k, &c) in t.assignment.iter().enumerate() {
                if c >= t.cells.len() {
                    return Err(format!(
                        "topology assigns client {k} to cell {c} of {}",
                        t.cells.len()
                    ));
                }
            }
            if let Some(p) = t.sync_period_ms {
                if !(p.is_finite() && p > 0.0 && p <= MAX_EVENT_MS) {
                    return Err(format!("sync period {p} outside (0, {MAX_EVENT_MS}] ms"));
                }
            }
        }
        for (i, ev) in self.timeline.iter().enumerate() {
            match ev {
                ScenarioEvent::Join(j) => {
                    if !(j.at_ms.is_finite() && (0.0..=MAX_EVENT_MS).contains(&j.at_ms)) {
                        return Err(format!(
                            "event {i}: join instant {} outside [0, {MAX_EVENT_MS}] ms",
                            j.at_ms
                        ));
                    }
                    if j.rounds == 0 {
                        return Err(format!("event {i}: joiner must run at least one round"));
                    }
                }
                ScenarioEvent::Leave(l) => {
                    if l.client >= total {
                        return Err(format!(
                            "event {i}: leave targets client {} of {total}",
                            l.client
                        ));
                    }
                    if l.after_rounds == 0 {
                        return Err(format!(
                            "event {i}: a client must complete at least one round before leaving"
                        ));
                    }
                }
                ScenarioEvent::PopularityShift(s) => {
                    if let Some(k) = s.client {
                        if k >= total {
                            return Err(format!(
                                "event {i}: popularity shift targets client {k} of {total}"
                            ));
                        }
                    }
                    match &s.shift {
                        PopularityShift::Rotate(_) | PopularityShift::Permute(_) => {}
                        PopularityShift::Replace(w) => {
                            if w.len() != classes {
                                return Err(format!(
                                    "event {i}: replacement weights have {} classes, dataset {classes}",
                                    w.len()
                                ));
                            }
                            if !w.iter().all(|x| x.is_finite() && *x >= 0.0)
                                || w.iter().sum::<f64>() <= 0.0
                            {
                                return Err(format!(
                                    "event {i}: replacement weights must be non-negative with positive mass"
                                ));
                            }
                        }
                    }
                }
                ScenarioEvent::LinkChange(c) => {
                    if let Some(k) = c.client {
                        if k >= total {
                            return Err(format!(
                                "event {i}: link change targets client {k} of {total}"
                            ));
                        }
                    }
                    if !(c.at_ms.is_finite() && (0.0..=MAX_EVENT_MS).contains(&c.at_ms)) {
                        return Err(format!(
                            "event {i}: link-change instant {} outside [0, {MAX_EVENT_MS}] ms",
                            c.at_ms
                        ));
                    }
                }
                ScenarioEvent::DeviceSpeed(d) => {
                    if let Some(k) = d.client {
                        if k >= total {
                            return Err(format!(
                                "event {i}: device speed targets client {k} of {total}"
                            ));
                        }
                    }
                    if d.frames_per_round == 0 {
                        return Err(format!(
                            "event {i}: a device must process at least one frame per round"
                        ));
                    }
                }
                ScenarioEvent::Migrate(m) => {
                    if m.client >= total {
                        return Err(format!(
                            "event {i}: migrate targets client {} of {total}",
                            m.client
                        ));
                    }
                    if m.after_rounds == 0 {
                        return Err(format!(
                            "event {i}: a client must complete at least one round before migrating"
                        ));
                    }
                    if m.to_cell >= num_cells {
                        return Err(format!(
                            "event {i}: migrate targets cell {} of {num_cells}",
                            m.to_cell
                        ));
                    }
                }
            }
        }
        Ok(())
    }

    /// Serializes to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("spec serialization is infallible")
    }

    /// Parses and validates a spec from JSON text.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let spec: ScenarioSpec =
            serde_json::from_str(text).map_err(|e| format!("spec parse error: {e}"))?;
        spec.validate()?;
        Ok(spec)
    }

    /// Materializes the spec into the pair every runner consumes: the
    /// shared [`Scenario`] (with the total fleet — base plus joiners —
    /// and popularity schedules baked into the streams) and the resolved
    /// [`DrivePlan`] (membership, round budgets, link schedules).
    ///
    /// # Panics
    /// Panics if [`ScenarioSpec::validate`] fails.
    pub fn materialize(&self) -> (Scenario, DrivePlan) {
        if let Err(e) = self.validate() {
            panic!("invalid scenario spec: {e}");
        }
        let base = self.scenario.num_clients;
        let total = self.total_clients();
        let mut cfg = self.scenario.clone();
        cfg.num_clients = total;
        let mut scenario = Scenario::build(cfg);

        let topology = match &self.topology {
            Some(t) => TopologyPlan {
                cells: t.num_cells(),
                assignment: (0..total).map(|k| t.cell_of(k)).collect(),
                cell_links: t.cells.iter().map(|c| c.link).collect(),
                peer_link: t.peer_link,
                sync_period_ms: t.sync_period_ms,
                sync_mode: t.sync_mode,
                migrations: Vec::new(),
            },
            None => TopologyPlan::single(total),
        };
        let mut plan = DrivePlan {
            frames_per_round: self.frames_per_round,
            boot_window_ms: self.boot_window_ms,
            members: vec![
                MemberPlan {
                    join_at_ms: None,
                    rounds: self.rounds,
                    frames_per_round: None,
                    leaves_early: false,
                };
                total
            ],
            links: vec![LinkSchedule::fixed(self.base_link); total],
            metrics_window_ms: self.metrics_window_ms,
            metrics: Default::default(),
            topology,
        };

        // Pass 1a — joins first (arrival order assigns indices), so that
        // a Leave listed before the Join it targets still truncates the
        // joiner instead of being overwritten by the join's member plan.
        let mut next_joiner = base;
        for ev in &self.timeline {
            if let ScenarioEvent::Join(j) = ev {
                plan.members[next_joiner] = MemberPlan {
                    join_at_ms: Some(j.at_ms),
                    rounds: j.rounds,
                    frames_per_round: None,
                    leaves_early: false,
                };
                next_joiner += 1;
            }
        }
        // Pass 1b — leaves, device speeds and link changes
        // (order-independent among themselves: leaves take the min round
        // budget, speeds overwrite, link changes are keyed by their own
        // instants).
        for ev in &self.timeline {
            match ev {
                ScenarioEvent::Leave(l) => {
                    let m = &mut plan.members[l.client];
                    if l.after_rounds < m.rounds {
                        m.rounds = l.after_rounds;
                        m.leaves_early = true;
                    }
                }
                ScenarioEvent::DeviceSpeed(d) => match d.client {
                    Some(k) => plan.members[k].frames_per_round = Some(d.frames_per_round),
                    None => {
                        for m in &mut plan.members {
                            m.frames_per_round = Some(d.frames_per_round);
                        }
                    }
                },
                ScenarioEvent::LinkChange(c) => {
                    let at = SimTime::from_millis_f64(c.at_ms);
                    match c.client {
                        Some(k) => plan.links[k].push_change(at, c.link),
                        None => {
                            for link in &mut plan.links {
                                link.push_change(at, c.link);
                            }
                        }
                    }
                }
                ScenarioEvent::Migrate(m) => {
                    plan.topology.migrations.push(MigrationPlan {
                        client: m.client,
                        after_rounds: m.after_rounds,
                        to_cell: m.to_cell,
                    });
                }
                ScenarioEvent::Join(_) | ScenarioEvent::PopularityShift(_) => {}
            }
        }

        // Pass 2 — popularity schedules: compose shifts per client in
        // `at_frame` order (stable, so listed order breaks ties) on top of
        // each client's materialized base distribution.
        let mut shifts: Vec<&PopularityShiftEvent> = self
            .timeline
            .iter()
            .filter_map(|e| match e {
                ScenarioEvent::PopularityShift(s) => Some(s),
                _ => None,
            })
            .collect();
        if !shifts.is_empty() {
            shifts.sort_by_key(|s| s.at_frame);
            let mut current: Vec<Vec<f64>> = scenario.distributions.clone();
            let mut schedules: Vec<Vec<PopularityPhase>> = vec![Vec::new(); total];
            let permute_seeds = SeedTree::new(self.scenario.seed).child("popularity-permute");
            for s in shifts {
                let targets: Vec<usize> = match s.client {
                    Some(k) => vec![k],
                    None => (0..total).collect(),
                };
                for k in targets {
                    apply_shift(&mut current[k], &s.shift, &permute_seeds);
                    schedules[k].push(PopularityPhase {
                        from_seq: s.at_frame,
                        class_weights: current[k].clone(),
                    });
                }
            }
            scenario.set_popularity_schedules(schedules);
        }

        (scenario, plan)
    }
}

/// Applies one shift in place. `Replace` normalizes; `Rotate`/`Permute`
/// preserve mass by construction.
fn apply_shift(weights: &mut [f64], shift: &PopularityShift, permute_seeds: &SeedTree) {
    match shift {
        PopularityShift::Rotate(n) => {
            let c = weights.len();
            weights.rotate_right(n % c.max(1));
        }
        PopularityShift::Replace(w) => {
            let sum: f64 = w.iter().sum();
            for (dst, src) in weights.iter_mut().zip(w) {
                *dst = src / sum;
            }
        }
        PopularityShift::Permute(seed) => {
            // Fisher–Yates with a deterministic RNG derived from the
            // spec's master seed and the event's own seed.
            use rand::Rng;
            let mut rng = permute_seeds.child_idx("event", *seed).rng();
            for i in (1..weights.len()).rev() {
                let j = rng.gen_range(0..=i);
                weights.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coca_data::DatasetSpec;
    use coca_model::ModelId;
    use coca_sim::SimDuration;

    fn base_cfg(seed: u64) -> ScenarioConfig {
        let mut sc = ScenarioConfig::new(ModelId::ResNet101, DatasetSpec::ucf101().subset(20));
        sc.num_clients = 3;
        sc.seed = seed;
        sc
    }

    fn slow_link() -> LinkModel {
        LinkModel {
            one_way_delay: SimDuration::from_millis(25),
            bandwidth_bps: 2.0e6,
        }
    }

    #[test]
    fn static_spec_matches_drive_config_plan() {
        let spec = ScenarioSpec::new(base_cfg(600), 4, 100);
        assert_eq!(spec.total_clients(), 3);
        let (scenario, plan) = spec.materialize();
        assert_eq!(scenario.config().num_clients, 3);
        assert_eq!(plan.members.len(), 3);
        assert!(plan
            .members
            .iter()
            .all(|m| m.join_at_ms.is_none() && m.rounds == 4 && !m.leaves_early));
        assert!(plan.links.iter().all(|l| l.is_static()));
        assert_eq!(plan.total_frames(), 3 * 4 * 100);
    }

    #[test]
    fn joins_extend_the_fleet_in_arrival_order() {
        let spec = ScenarioSpec::new(base_cfg(601), 4, 100)
            .join(10_000.0, 2)
            .join(20_000.0, 3);
        assert_eq!(spec.total_clients(), 5);
        let (scenario, plan) = spec.materialize();
        assert_eq!(scenario.config().num_clients, 5);
        assert_eq!(plan.members[3].join_at_ms, Some(10_000.0));
        assert_eq!(plan.members[3].rounds, 2);
        assert_eq!(plan.members[4].join_at_ms, Some(20_000.0));
        assert_eq!(plan.members[4].rounds, 3);
        assert_eq!(plan.total_frames(), (3 * 4 + 2 + 3) * 100);
    }

    #[test]
    fn leave_truncates_rounds_and_flags_early_departure() {
        let spec = ScenarioSpec::new(base_cfg(602), 5, 50)
            .leave(1, 2)
            .leave(2, 9); // ≥ budget: a no-op
        let (_, plan) = spec.materialize();
        assert_eq!(plan.members[1].rounds, 2);
        assert!(plan.members[1].leaves_early);
        assert_eq!(plan.members[2].rounds, 5);
        assert!(!plan.members[2].leaves_early);
    }

    #[test]
    fn link_changes_compile_into_per_client_schedules() {
        let spec = ScenarioSpec::new(base_cfg(603), 3, 50)
            .link_change(Some(0), 5_000.0, slow_link())
            .link_change(None, 9_000.0, LinkModel::testbed());
        let (_, plan) = spec.materialize();
        assert!(!plan.links[0].is_static());
        assert_eq!(plan.links[0].changes().len(), 2);
        assert_eq!(plan.links[1].changes().len(), 1);
        let t = SimTime::from_millis_f64(6_000.0);
        assert_eq!(
            plan.links[0].link_at(t).one_way_delay,
            SimDuration::from_millis(25)
        );
        assert_eq!(
            plan.links[1].link_at(t).one_way_delay,
            LinkModel::testbed().one_way_delay
        );
    }

    #[test]
    fn popularity_shifts_compose_in_frame_order() {
        let spec = ScenarioSpec::new(base_cfg(604), 3, 50)
            // Listed out of order on purpose: frame order must win.
            .popularity_shift(Some(0), 400, PopularityShift::Rotate(3))
            .popularity_shift(None, 200, PopularityShift::Rotate(2));
        let (scenario, _) = spec.materialize();
        let base = scenario.distributions[0].clone();
        // Client 0's stream: rotate(2) at frame 200, then rotate(3) more
        // at frame 400 (total 5).
        let s = scenario.stream(0);
        // Indirect check: materialize twice → identical streams.
        let again = spec.materialize().0;
        let mut a = s;
        let mut b = again.stream(0);
        assert_eq!(a.take(1000), b.take(1000));
        // And the composed weight after both shifts is base rotated by 5.
        let mut expect = base;
        expect.rotate_right(2);
        expect.rotate_right(3);
        let mut c = again.stream(0);
        let _ = c.take(600); // past both boundaries
        let got = c.class_weights().to_vec();
        for (g, e) in got.iter().zip(&expect) {
            assert!((g - e).abs() < 1e-12, "{g} vs {e}");
        }
    }

    #[test]
    fn permute_is_deterministic_and_mass_preserving() {
        let mut w: Vec<f64> = (1..=8).map(|i| i as f64 / 36.0).collect();
        let mut v = w.clone();
        let seeds = SeedTree::new(42).child("popularity-permute");
        apply_shift(&mut w, &PopularityShift::Permute(7), &seeds);
        apply_shift(&mut v, &PopularityShift::Permute(7), &seeds);
        assert_eq!(w, v);
        assert!((w.iter().sum::<f64>() - v.iter().sum::<f64>()).abs() < 1e-12);
        let mut sorted = w.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let mut orig: Vec<f64> = (1..=8).map(|i| i as f64 / 36.0).collect();
        orig.sort_by(|a, b| a.total_cmp(b));
        assert_eq!(sorted, orig, "permutation must preserve the multiset");
    }

    #[test]
    fn json_round_trip_preserves_the_spec() {
        let spec = ScenarioSpec::new(base_cfg(605), 4, 120)
            .join(7_500.5, 2)
            .leave(0, 3)
            .popularity_shift(None, 300, PopularityShift::Permute(99))
            .popularity_shift(Some(1), 500, PopularityShift::Rotate(4))
            .link_change(Some(2), 12_000.0, slow_link());
        let text = spec.to_json();
        let back = ScenarioSpec::from_json(&text).expect("round trip");
        assert_eq!(back.to_json(), text, "serialization must be stable");
        assert_eq!(back.total_clients(), spec.total_clients());
        // Materializations agree structurally.
        let (sa, pa) = spec.materialize();
        let (sb, pb) = back.materialize();
        assert_eq!(pa.total_frames(), pb.total_frames());
        for k in 0..spec.total_clients() {
            let mut x = sa.stream(k);
            let mut y = sb.stream(k);
            assert_eq!(x.take(400), y.take(400), "client {k} stream differs");
        }
    }

    #[test]
    fn validation_rejects_bad_targets() {
        let spec = ScenarioSpec::new(base_cfg(606), 3, 50).leave(7, 1);
        assert!(spec.validate().is_err());
        let spec = ScenarioSpec::new(base_cfg(607), 3, 50).popularity_shift(
            None,
            10,
            PopularityShift::Replace(vec![0.5; 3]),
        );
        assert!(spec.validate().is_err(), "wrong class count must fail");
        let mut ok = ScenarioSpec::new(base_cfg(608), 3, 50);
        ok.timeline.push(ScenarioEvent::Join(JoinEvent {
            at_ms: f64::NAN,
            rounds: 1,
        }));
        assert!(ok.validate().is_err());
        // Far-future instants are rejected before they can blow up the
        // windowed-metrics buckets.
        let far = ScenarioSpec::new(base_cfg(611), 3, 50).join(MAX_EVENT_MS * 10.0, 1);
        assert!(far.validate().is_err());
        let far_link =
            ScenarioSpec::new(base_cfg(612), 3, 50).link_change(None, 1.0e12, slow_link());
        assert!(far_link.validate().is_err());
    }

    #[test]
    fn leave_targeting_a_joiner_is_valid() {
        // Join adds client index 3; a leave may then target it.
        let spec = ScenarioSpec::new(base_cfg(609), 4, 50)
            .join(5_000.0, 3)
            .leave(3, 1);
        assert!(spec.validate().is_ok());
        let (_, plan) = spec.materialize();
        assert_eq!(plan.members[3].rounds, 1);
        assert!(plan.members[3].leaves_early);
    }

    #[test]
    fn device_speed_sets_per_member_frame_budgets() {
        let spec = ScenarioSpec::new(base_cfg(613), 2, 50)
            .join(5_000.0, 2)
            .device_speed(Some(1), 10);
        assert!(spec.validate().is_ok());
        let (_, plan) = spec.materialize();
        assert_eq!(plan.members[0].frames_per_round, None);
        assert_eq!(plan.members[1].frames_per_round, Some(10));
        assert_eq!(plan.member_frames(0), 50);
        assert_eq!(plan.member_frames(1), 10);
        // m0: 2×50, m1: 2×10, m2: 2×50, joiner m3: 2×50.
        assert_eq!(plan.total_frames(), 100 + 20 + 100 + 100);

        // A fleet-wide event (client: None) covers joiners too.
        let all = ScenarioSpec::new(base_cfg(614), 2, 50)
            .join(5_000.0, 2)
            .device_speed(None, 25);
        let (_, plan) = all.materialize();
        assert!(plan.members.iter().all(|m| m.frames_per_round == Some(25)));
        assert_eq!(plan.total_frames(), (3 * 2 + 2) * 25);
    }

    #[test]
    fn device_speed_validation_and_json_round_trip() {
        let bad_target = ScenarioSpec::new(base_cfg(615), 2, 50).device_speed(Some(9), 10);
        assert!(bad_target.validate().is_err());
        let zero = ScenarioSpec::new(base_cfg(616), 2, 50).device_speed(Some(0), 0);
        assert!(zero.validate().is_err(), "zero frames per round must fail");

        let spec = ScenarioSpec::new(base_cfg(617), 2, 50)
            .device_speed(Some(2), 12)
            .device_speed(None, 30);
        let text = spec.to_json();
        let back = ScenarioSpec::from_json(&text).expect("round trip");
        assert_eq!(back.to_json(), text, "serialization must be stable");
        let (_, pa) = spec.materialize();
        let (_, pb) = back.materialize();
        assert_eq!(pa.total_frames(), pb.total_frames());
        // Later events win: the fleet-wide 30 overwrites client 2's 12.
        assert!(pb.members.iter().all(|m| m.frames_per_round == Some(30)));
    }

    #[test]
    fn leave_listed_before_its_join_still_applies() {
        // Joins are processed before leaves regardless of listed order, so
        // the join's member plan cannot overwrite the truncation.
        let spec = ScenarioSpec::new(base_cfg(610), 4, 50)
            .leave(3, 1)
            .join(5_000.0, 3);
        assert!(spec.validate().is_ok());
        let (_, plan) = spec.materialize();
        assert_eq!(plan.members[3].join_at_ms, Some(5_000.0));
        assert_eq!(plan.members[3].rounds, 1);
        assert!(plan.members[3].leaves_early);
    }
}
