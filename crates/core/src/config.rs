//! CoCa configuration: the paper's thresholds, decays and toggles.

use coca_math::Precision;
use coca_model::ModelId;
use serde::{Deserialize, Serialize};

/// When the server merges client uploads into the global cache table —
/// the engine's upload pipeline (§IV.A step 3 / "cache collection").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MergeMode {
    /// Merge each upload at its arrival event — the original engine
    /// behavior, one `merge_update` per `Ev::Upload`.
    PerUpload,
    /// Queue arriving uploads and drain the pending batch through the
    /// per-layer batched pass (`handle_updates_batch`'s machinery) at the
    /// next request/allocation boundary — the paper's round-granular
    /// aggregator. The pending queue preserves FIFO arrival order and the
    /// batched pass is bit-identical to sequential merging in that order,
    /// and every virtual cost is still charged at the upload's arrival
    /// instant, so runs are **byte-identical** to [`MergeMode::PerUpload`]
    /// (property-tested in `tests/proptest_merge_modes.rs`) — this mode
    /// changes where the real (wall-clock) merge work happens, not a
    /// single record.
    QueueAndFlush,
}

/// *When* a [`MergeMode::QueueAndFlush`] pending queue is drained — the
/// fleet-scale knob of the upload pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FlushPolicy {
    /// Drain the pending batch at the next request/allocation boundary —
    /// the original queue-and-flush behavior, byte-identical to
    /// [`MergeMode::PerUpload`]. Batches stay small (whatever arrived
    /// since the last boundary), so the sharded batched merge rarely has
    /// enough work to amortize its fan-out at large fleets.
    EveryBoundary,
    /// Round-aligned flush: hold the queue until every *live* member's
    /// upload for the round has arrived (a high-watermark on the pending
    /// count), then drain once — handing `merge_batch_sharded` a
    /// fleet-sized batch. Allocation requests served while uploads are
    /// pending read the **effective frequency** (global Φ plus queued,
    /// not-yet-merged φ, Eq. 5's sum rearranged — exact u64 arithmetic),
    /// so ACA's hot-spot scores see every completed round. Centroid
    /// *positions*, however, lag by up to one round relative to
    /// per-upload merging, so records produced under this policy are a
    /// **relaxed observation contract**: deterministic and
    /// worker-count-independent (property-tested), but not byte-identical
    /// to [`FlushPolicy::EveryBoundary`] runs.
    RoundAligned,
}

/// All tunables of the CoCa framework. Field docs cite the paper values.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CocaConfig {
    /// Θ — discriminative-score threshold for a cache hit (Eq. 2). Paper:
    /// 0.012 (ResNets, 3 % SLO), 0.008 (5 % SLO); 0.035 / 0.027 for
    /// VGG16_BN (§VI.D).
    pub theta: f32,
    /// Γ — rule-1 collection threshold: hits with `D_j > Γ` reinforce the
    /// cache (§IV.C). Paper recommendation: 0.1 for ResNets.
    pub gamma_collect: f32,
    /// Δ — rule-2 collection threshold: misses with `prob₁ − prob₂ > Δ`
    /// expand the cache (§IV.C). Paper recommendation: 0.25.
    pub delta_collect: f32,
    /// α — cross-layer accumulation decay (Eq. 1). Paper default 0.5.
    pub alpha: f32,
    /// β — update-table decay (Eq. 3). Paper default 0.95.
    pub beta: f32,
    /// γ — global-cache decay (Eq. 4). Paper default 0.99.
    pub gamma_global: f32,
    /// β — exponential Φ decay applied when a client leaves the fleet:
    /// `Φ_i ← ⌈β·Φ_i⌉`. The paper models a static fleet, so the default
    /// `1.0` disables it; under churn a sub-unit β ages a leaver's
    /// frequency mass out of ACA's hot-spot scores (ROADMAP's
    /// decay/retirement open item — CoCa centroids have no provenance,
    /// so retirement acts on Φ, not on centers).
    pub leave_phi_decay: f64,
    /// F — frames per round / cache update cycle (§IV.C). Paper: 300.
    pub round_frames: usize,
    /// Hot-spot class selection mass (Algorithm 1 line 9). Paper: 0.95.
    pub hotspot_mass: f64,
    /// Recency decay base in the class score `s_i = Φ_i · base^⌊τ_i/F⌋`
    /// (Eq. 10). Paper: 0.20.
    pub recency_base: f64,
    /// Π — per-client cache budget in bytes. `0` means *auto*: the engine
    /// sets it to 1/8 of the model's full cache size for the task (the
    /// paper's optimum sits near 10 % of the full cache, Fig. 1(a)).
    pub cache_budget_bytes: usize,
    /// EWMA smoothing for the client's per-layer hit-ratio estimates
    /// (the R vector uploaded to the server).
    pub hit_ratio_ewma_alpha: f64,
    /// Ablation: dynamic cache allocation (ACA per round). Off = the
    /// "Normal"/"GCU" arms of Fig. 9: a static allocation computed once.
    pub enable_dca: bool,
    /// Ablation: global cache updates (Eq. 4/5). Off = the "Normal"/"DCA"
    /// arms of Fig. 9: the global table stays at its initial contents.
    pub enable_gcu: bool,
    /// Algorithm 1 lines 19–21: deflate later layers' expected hit ratios
    /// after selecting a layer. Exposed for the DESIGN.md §7 ablation.
    pub aca_deflation: bool,
    /// Rank layers by expected benefit **per byte** (`ζ_j / m_j`) instead
    /// of raw `ζ_j`. Entry sizes vary 8× across depths, so a budgeted
    /// greedy normalizes by cost — this is our reading of the paper's
    /// "order of expected benefits" under the memory constraint, and it
    /// yields the spread allocations of the paper's Fig. 4 example.
    /// Exposed for the DESIGN.md §7 ablation.
    pub aca_per_byte: bool,
    /// Upload pipeline: merge per arrival event or queue-and-flush at
    /// round boundaries (byte-identical results either way; see
    /// [`MergeMode`]).
    pub merge_mode: MergeMode,
    /// Shard the batched merge across layers with rayon
    /// (`merge_batch_sharded`) when draining a queued batch. Bit-identical
    /// at any worker count; only the wall-clock changes. Only consulted
    /// under [`MergeMode::QueueAndFlush`] (the per-upload path has no
    /// batch to shard).
    pub parallel_merge: bool,
    /// When the queued batch is drained: every boundary (default,
    /// byte-identical to per-upload) or round-aligned (fleet-sized
    /// batches, relaxed observation contract; see [`FlushPolicy`]). Only
    /// consulted under [`MergeMode::QueueAndFlush`].
    pub flush_policy: FlushPolicy,
    /// Storage precision of the data that *moves*: upload tables,
    /// allocation frames and the server's global-table layers. The
    /// default [`Precision::F32`] is the committed-record reference;
    /// [`Precision::F16`] / [`Precision::I8`] shrink `wire_bytes` and the
    /// table footprint 2–4× at a measured hit-ratio/accuracy cost (see
    /// `results/quant.json`). Kernels always compute in f32 —
    /// quantized rows dequantize on read.
    pub precision: Precision,
    /// Durability: WAL records per segment before the log rotates into a
    /// fresh snapshot generation. Smaller values bound replay work at the
    /// cost of more frequent snapshot writes; only consulted when a
    /// [`Durability`](crate::persist::Durability) layer is attached.
    pub wal_rotate_records: usize,
}

/// Reads the `COCA_MERGE_MODE` override (`per_upload` /
/// `queue_and_flush`). CI runs the whole tier-1 suite once under
/// `queue_and_flush` to catch determinism drift; anything else (unset or
/// unrecognized) means "no override".
fn merge_mode_from_env() -> Option<MergeMode> {
    match std::env::var("COCA_MERGE_MODE").ok()?.as_str() {
        "per_upload" => Some(MergeMode::PerUpload),
        "queue_and_flush" => Some(MergeMode::QueueAndFlush),
        _ => None,
    }
}

/// Reads the `COCA_FLUSH_POLICY` override (`every_boundary` /
/// `round_aligned`); the fleet-scale sweep sets this without rebuilding
/// configs by hand. Anything else (unset or unrecognized) means "no
/// override".
fn flush_policy_from_env() -> Option<FlushPolicy> {
    match std::env::var("COCA_FLUSH_POLICY").ok()?.as_str() {
        "every_boundary" => Some(FlushPolicy::EveryBoundary),
        "round_aligned" => Some(FlushPolicy::RoundAligned),
        _ => None,
    }
}

/// Reads the `COCA_PRECISION` override (`f32` / `f16` / `i8`); the
/// quantization sweep sets this without rebuilding configs by hand.
/// Anything else (unset or unrecognized) means "no override".
fn precision_from_env() -> Option<Precision> {
    Precision::parse(std::env::var("COCA_PRECISION").ok()?.as_str())
}

/// Reads the `COCA_WAL_ROTATE` override (a positive record count); the
/// recovery sweeps set tiny segments without rebuilding configs by hand.
/// Anything else (unset, unparsable or zero) means "no override".
fn wal_rotate_from_env() -> Option<usize> {
    std::env::var("COCA_WAL_ROTATE")
        .ok()?
        .parse::<usize>()
        .ok()
        .filter(|&n| n > 0)
}

/// Reads the `COCA_PARALLEL_MERGE` override (`1`/`true` on, `0`/`false`
/// off); the paired CI knob for the sharded-merge drift run.
fn parallel_merge_from_env() -> Option<bool> {
    match std::env::var("COCA_PARALLEL_MERGE").ok()?.as_str() {
        "1" | "true" => Some(true),
        "0" | "false" => Some(false),
        _ => None,
    }
}

impl CocaConfig {
    /// Paper defaults for a model family under the 3 % accuracy-loss SLO.
    pub fn for_model(model: ModelId) -> Self {
        let theta = match model {
            ModelId::Vgg16Bn => 0.035,
            // The paper tunes Θ per family; transformers behave like the
            // deep ResNets in our geometry.
            _ => 0.012,
        };
        Self {
            theta,
            gamma_collect: 0.015,
            delta_collect: 0.25,
            alpha: 0.5,
            beta: 0.95,
            gamma_global: 0.99,
            leave_phi_decay: 1.0, // churn decay off: the paper's static fleet
            round_frames: 300,
            hotspot_mass: 0.95,
            recency_base: 0.20,
            cache_budget_bytes: 0, // 0 = auto: 1/8 of the task's full cache
            hit_ratio_ewma_alpha: 0.3,
            enable_dca: true,
            enable_gcu: true,
            aca_deflation: true,
            aca_per_byte: true,
            // Per-upload remains the default; the env overrides exist so
            // CI can sweep the whole suite through the other pipeline.
            merge_mode: merge_mode_from_env().unwrap_or(MergeMode::PerUpload),
            parallel_merge: parallel_merge_from_env().unwrap_or(false),
            flush_policy: flush_policy_from_env().unwrap_or(FlushPolicy::EveryBoundary),
            precision: precision_from_env().unwrap_or(Precision::F32),
            wal_rotate_records: wal_rotate_from_env().unwrap_or(256),
        }
    }

    /// Paper thresholds for the 5 % accuracy-loss SLO (Table II).
    pub fn for_model_slo5(model: ModelId) -> Self {
        let mut cfg = Self::for_model(model);
        cfg.theta = match model {
            ModelId::Vgg16Bn => 0.027,
            _ => 0.008,
        };
        cfg
    }

    /// Returns a copy with the given hit threshold (used by sweeps).
    pub fn with_theta(mut self, theta: f32) -> Self {
        self.theta = theta;
        self
    }

    /// Returns a copy with the given cache budget.
    pub fn with_budget(mut self, bytes: usize) -> Self {
        self.cache_budget_bytes = bytes;
        self
    }

    /// Returns a copy with the given round length F.
    pub fn with_round_frames(mut self, f: usize) -> Self {
        self.round_frames = f;
        self
    }

    /// Returns a copy with the given upload-pipeline merge mode.
    pub fn with_merge_mode(mut self, mode: MergeMode) -> Self {
        self.merge_mode = mode;
        self
    }

    /// Returns a copy with layer-sharded batch merging toggled.
    pub fn with_parallel_merge(mut self, on: bool) -> Self {
        self.parallel_merge = on;
        self
    }

    /// Returns a copy with the given queue-flush policy.
    pub fn with_flush_policy(mut self, policy: FlushPolicy) -> Self {
        self.flush_policy = policy;
        self
    }

    /// Returns a copy with the given wire/table precision.
    pub fn with_precision(mut self, precision: Precision) -> Self {
        self.precision = precision;
        self
    }

    /// Returns a copy with the given WAL rotation threshold.
    pub fn with_wal_rotate(mut self, records: usize) -> Self {
        self.wal_rotate_records = records;
        self
    }

    /// Validates ranges; engine constructors call this.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.theta.is_finite() && self.theta > 0.0) {
            return Err(format!("theta must be positive, got {}", self.theta));
        }
        if !(0.0..1.0).contains(&self.alpha) {
            return Err("alpha must be in [0,1)".into());
        }
        if !(0.0..1.0).contains(&self.beta) {
            return Err("beta must be in [0,1)".into());
        }
        if !(0.0..=1.0).contains(&self.gamma_global) {
            return Err("gamma must be in [0,1]".into());
        }
        if !(self.leave_phi_decay > 0.0 && self.leave_phi_decay <= 1.0) {
            return Err("leave_phi_decay must be in (0,1]".into());
        }
        if self.round_frames == 0 {
            return Err("round_frames must be positive".into());
        }
        if !(0.0..=1.0).contains(&self.hotspot_mass) {
            return Err("hotspot_mass must be in [0,1]".into());
        }
        if !(0.0..1.0).contains(&self.recency_base) || self.recency_base <= 0.0 {
            return Err("recency_base must be in (0,1)".into());
        }
        if self.hit_ratio_ewma_alpha <= 0.0 || self.hit_ratio_ewma_alpha > 1.0 {
            return Err("hit_ratio_ewma_alpha must be in (0,1]".into());
        }
        if self.wal_rotate_records == 0 {
            return Err("wal_rotate_records must be positive".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let cfg = CocaConfig::for_model(ModelId::ResNet101);
        assert!((cfg.theta - 0.012).abs() < 1e-9);
        assert!((cfg.alpha - 0.5).abs() < 1e-9);
        assert!((cfg.beta - 0.95).abs() < 1e-9);
        assert!((cfg.gamma_global - 0.99).abs() < 1e-9);
        assert_eq!(cfg.round_frames, 300);
        assert!((cfg.hotspot_mass - 0.95).abs() < 1e-12);
        assert!((cfg.recency_base - 0.20).abs() < 1e-12);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn vgg_gets_its_own_theta() {
        assert!((CocaConfig::for_model(ModelId::Vgg16Bn).theta - 0.035).abs() < 1e-9);
        assert!((CocaConfig::for_model_slo5(ModelId::Vgg16Bn).theta - 0.027).abs() < 1e-9);
        assert!((CocaConfig::for_model_slo5(ModelId::ResNet152).theta - 0.008).abs() < 1e-9);
    }

    #[test]
    fn validate_rejects_bad_values() {
        let good = CocaConfig::for_model(ModelId::ResNet101);
        assert!(good.with_theta(0.0).validate().is_err());
        let mut bad = good;
        bad.alpha = 1.0;
        assert!(bad.validate().is_err());
        let mut bad = good;
        bad.round_frames = 0;
        assert!(bad.validate().is_err());
        let mut bad = good;
        bad.recency_base = 0.0;
        assert!(bad.validate().is_err());
    }

    #[test]
    fn builder_helpers() {
        let cfg = CocaConfig::for_model(ModelId::ResNet101)
            .with_theta(0.02)
            .with_budget(12345)
            .with_round_frames(150)
            .with_merge_mode(MergeMode::QueueAndFlush)
            .with_parallel_merge(true);
        assert!((cfg.theta - 0.02).abs() < 1e-9);
        assert_eq!(cfg.cache_budget_bytes, 12345);
        assert_eq!(cfg.round_frames, 150);
        assert_eq!(cfg.merge_mode, MergeMode::QueueAndFlush);
        assert!(cfg.parallel_merge);
    }

    #[test]
    fn merge_mode_defaults_honor_env_overrides() {
        let cfg = CocaConfig::for_model(ModelId::ResNet101);
        // The suite runs both bare and under the CI drift sweep
        // (COCA_MERGE_MODE / COCA_PARALLEL_MERGE set); assert whichever
        // contract applies so the test is meaningful in both.
        match std::env::var("COCA_MERGE_MODE").as_deref() {
            Ok("queue_and_flush") => assert_eq!(cfg.merge_mode, MergeMode::QueueAndFlush),
            Ok("per_upload") => assert_eq!(cfg.merge_mode, MergeMode::PerUpload),
            _ => assert_eq!(
                cfg.merge_mode,
                MergeMode::PerUpload,
                "default is per-upload"
            ),
        }
        match std::env::var("COCA_PARALLEL_MERGE").as_deref() {
            Ok("1") | Ok("true") => assert!(cfg.parallel_merge),
            Ok("0") | Ok("false") => assert!(!cfg.parallel_merge),
            _ => assert!(!cfg.parallel_merge, "default is serial"),
        }
    }

    #[test]
    fn flush_policy_defaults_and_builder() {
        let cfg = CocaConfig::for_model(ModelId::ResNet101);
        match std::env::var("COCA_FLUSH_POLICY").as_deref() {
            Ok("round_aligned") => assert_eq!(cfg.flush_policy, FlushPolicy::RoundAligned),
            Ok("every_boundary") => assert_eq!(cfg.flush_policy, FlushPolicy::EveryBoundary),
            _ => assert_eq!(
                cfg.flush_policy,
                FlushPolicy::EveryBoundary,
                "default flushes at every boundary"
            ),
        }
        let cfg = cfg.with_flush_policy(FlushPolicy::RoundAligned);
        assert_eq!(cfg.flush_policy, FlushPolicy::RoundAligned);
        let json = serde_json::to_string(&cfg).unwrap();
        let back: CocaConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.flush_policy, FlushPolicy::RoundAligned);
    }

    #[test]
    fn precision_defaults_and_builder() {
        let cfg = CocaConfig::for_model(ModelId::ResNet101);
        match std::env::var("COCA_PRECISION").as_deref() {
            Ok("f16") => assert_eq!(cfg.precision, Precision::F16),
            Ok("i8") => assert_eq!(cfg.precision, Precision::I8),
            _ => assert_eq!(cfg.precision, Precision::F32, "default is f32"),
        }
        let cfg = cfg.with_precision(Precision::I8);
        assert_eq!(cfg.precision, Precision::I8);
        assert!(cfg.validate().is_ok());
        let json = serde_json::to_string(&cfg).unwrap();
        let back: CocaConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.precision, Precision::I8);
    }

    #[test]
    fn wal_rotate_defaults_and_builder() {
        let cfg = CocaConfig::for_model(ModelId::ResNet101);
        match std::env::var("COCA_WAL_ROTATE").as_deref() {
            Ok(v) if v.parse::<usize>().map(|n| n > 0).unwrap_or(false) => {
                assert_eq!(cfg.wal_rotate_records, v.parse::<usize>().unwrap())
            }
            _ => assert_eq!(cfg.wal_rotate_records, 256, "default segment length"),
        }
        let cfg = cfg.with_wal_rotate(8);
        assert_eq!(cfg.wal_rotate_records, 8);
        assert!(cfg.validate().is_ok());
        let mut bad = cfg;
        bad.wal_rotate_records = 0;
        assert!(bad.validate().is_err());
    }

    #[test]
    fn merge_mode_serde_round_trips() {
        let cfg = CocaConfig::for_model(ModelId::ResNet101)
            .with_merge_mode(MergeMode::QueueAndFlush)
            .with_parallel_merge(true);
        let json = serde_json::to_string(&cfg).unwrap();
        let back: CocaConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.merge_mode, MergeMode::QueueAndFlush);
        assert!(back.parallel_merge);
    }
}
