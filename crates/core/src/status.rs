//! Client status vectors τ and φ (paper §IV.C).
//!
//! * `τ_i` — "the number of inference processes since the last appearance
//!   of a sample of class i": reset to zero when class i is (predicted to
//!   be) observed, incremented otherwise.
//! * `φ_i` — occurrences of class i within the current round; cleared at
//!   round boundaries after upload.
//!
//! The client only knows its *predicted* labels, so both vectors track
//! predictions, not ground truth — exactly what a deployed system can do.

use serde::{Deserialize, Serialize};

/// Saturation cap for timestamps: far beyond any recency horizon the score
/// function can distinguish (0.2^(cap/F) underflows long before).
const TAU_CAP: u32 = 1_000_000;

/// The per-client status bookkeeping.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClientStatus {
    /// τ — steps since each class last appeared.
    timestamps: Vec<u32>,
    /// φ — per-round class occurrence counts. Carried as `u64` so the
    /// whole Φ pipeline (collect → wire → global Eq. 5) shares one
    /// integer type end to end; a round's counts stay far below `u32`
    /// range, which is what the wire codec packs them as.
    frequency: Vec<u64>,
}

impl ClientStatus {
    /// Fresh status for `num_classes` classes. All timestamps start at the
    /// cap ("never seen"), so unseen classes score minimally in ACA.
    pub fn new(num_classes: usize) -> Self {
        Self {
            timestamps: vec![TAU_CAP; num_classes],
            frequency: vec![0; num_classes],
        }
    }

    /// Overwrites τ with a client-reported vector — the server-side
    /// mirror kept for durability snapshots. A length-mismatched report
    /// copies the overlapping prefix, the same truncating `zip`
    /// discipline the merge pipeline applies to ragged inputs.
    pub fn record_timestamps(&mut self, tau: &[u32]) {
        for (dst, &src) in self.timestamps.iter_mut().zip(tau) {
            *dst = src;
        }
    }

    /// Overwrites φ with a client-reported vector (server-side mirror;
    /// see [`ClientStatus::record_timestamps`]).
    pub fn record_frequency(&mut self, phi: &[u64]) {
        for (dst, &src) in self.frequency.iter_mut().zip(phi) {
            *dst = src;
        }
    }

    /// Records one inference whose (predicted) class is `class`.
    pub fn observe(&mut self, class: usize) {
        for (i, t) in self.timestamps.iter_mut().enumerate() {
            if i == class {
                *t = 0;
            } else if *t < TAU_CAP {
                *t += 1;
            }
        }
        self.frequency[class] += 1;
    }

    /// τ snapshot (uploaded with cache requests).
    pub fn timestamps(&self) -> &[u32] {
        &self.timestamps
    }

    /// φ snapshot (uploaded for global updates).
    pub fn frequency(&self) -> &[u64] {
        &self.frequency
    }

    /// Clears φ for the next round; τ persists across rounds.
    pub fn reset_round(&mut self) {
        self.frequency.iter_mut().for_each(|f| *f = 0);
    }

    /// Number of classes tracked.
    pub fn num_classes(&self) -> usize {
        self.timestamps.len()
    }

    /// Total observations this round.
    pub fn round_total(&self) -> u64 {
        self.frequency.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observe_resets_and_increments() {
        let mut s = ClientStatus::new(3);
        s.observe(1);
        assert_eq!(s.timestamps()[1], 0);
        assert_eq!(s.timestamps()[0], TAU_CAP); // still never seen
        s.observe(2);
        s.observe(2);
        assert_eq!(s.timestamps()[1], 2);
        assert_eq!(s.timestamps()[2], 0);
        assert_eq!(s.frequency(), &[0, 1, 2]);
        assert_eq!(s.round_total(), 3);
    }

    #[test]
    fn reset_round_keeps_timestamps() {
        let mut s = ClientStatus::new(2);
        s.observe(0);
        s.observe(1);
        s.reset_round();
        assert_eq!(s.frequency(), &[0, 0]);
        assert_eq!(s.timestamps()[0], 1);
        assert_eq!(s.timestamps()[1], 0);
    }

    #[test]
    fn timestamps_saturate() {
        let mut s = ClientStatus::new(2);
        s.observe(0); // τ_0 = 0, τ_1 stays at cap
        for _ in 0..10 {
            s.observe(0);
        }
        assert_eq!(s.timestamps()[1], TAU_CAP);
        assert_eq!(s.timestamps()[0], 0);
    }
}
