//! The generic virtual-time method engine (`MethodDriver` + [`drive`]).
//!
//! The paper compares CoCa against FoggyCache-, SMTM- and LearnedCache-
//! style baselines under *identical* multi-client conditions. For those
//! numbers to be apples-to-apples, every method must execute inside the
//! same discrete-event loop: staggered client boots, link transfer delays,
//! and a single server FIFO queue that prices contention. This module
//! extracts that loop from the CoCa-specific engine so *any* method — the
//! full CoCa protocol, FoggyCache's per-frame remote lookups, or a purely
//! local cache policy — runs through one event loop and emits one report
//! shape.
//!
//! A method implements [`MethodDriver`]; the engine owns the workload
//! (frame streams from the shared [`Scenario`]), virtual time, the link
//! and the server queue. Per round and client the engine:
//!
//! 1. asks the driver for an optional **cache request** (CoCa's §IV.A
//!    step 1; purely local methods return `None` and boot straight into
//!    frames);
//! 2. prices request uplink, server FIFO queueing, driver-reported service
//!    time and allocation downlink, then **installs** the allocation;
//! 3. feeds `frames_per_round` frames through [`MethodDriver::process_frame`].
//!    A frame may pause on a **server query** (FoggyCache's remote lookup):
//!    the engine turns it into a real request/response event pair — uplink,
//!    queue wait, service, downlink — and resumes the frame on delivery;
//! 4. collects an optional end-of-round **upload** whose server-side merge
//!    cost is attributed to the uploading client's summary.
//!
//! Determinism: all randomness derives from the scenario's [`SeedTree`],
//! event ties break FIFO, and every consumed frame folds into an
//! order-independent digest so tests can assert two methods saw
//! byte-identical streams.
//!
//! ## Dynamic fleets
//!
//! The engine also executes **dynamic scenarios** (see
//! [`crate::spec::ScenarioSpec`]) through [`drive_plan`]: a [`DrivePlan`]
//! describes per-member boot instants, per-member round budgets (a `Leave`
//! truncates them) and per-member time-varying [`LinkSchedule`]s. A
//! mid-run joiner boots at its virtual join instant, issues a fresh cache
//! request and folds into the same frame digest; a leaver departs at its
//! final round boundary — its end-of-round upload and any in-flight
//! request/reply pairs drain through the FIFO before the queue empties.
//! Frame-consuming dynamics are keyed in *client-progress* space (rounds
//! or frame indices) rather than wall-clock virtual time precisely so the
//! cross-method digest invariant survives: methods progress through the
//! same streams at different speeds, but they consume identical frames.
//!
//! ## Multi-edge topologies
//!
//! A [`DrivePlan`] carries a [`TopologyPlan`]: N server cells, each with
//! its own FIFO queue, a client→cell assignment (mutable mid-run via
//! `Migrate` events, applied at round boundaries in client-progress
//! space), optional per-cell client↔cell link overrides, and a priced
//! periodic **peer-sync** event. At each sync tick the driver exports
//! table deltas ([`MethodDriver::sync_export`]); the engine prices each
//! over the topology's `peer_link`, routes the delivery through the
//! destination cell's FIFO, and hands it to
//! [`MethodDriver::sync_absorb`] — which may emit follow-up deltas (the
//! hub's broadcast leg). [`TopologyPlan::single`] — one cell, no
//! overrides, no sync — executes the exact event sequence of the legacy
//! single-server path, so every committed record regenerates unchanged.

use coca_data::{Frame, StreamGenerator};
use coca_metrics::recorder::{LatencyRecorder, RunSummary};
use coca_metrics::WindowedSummary;
use coca_net::{LinkModel, LinkSchedule, ServerQueue, WireSize};
use coca_sim::{EventQueue, SimDuration, SimTime};
use rand::Rng;

use crate::engine::{EngineReport, Scenario};
use crate::spec::SyncMode;

/// What one fully processed frame cost and produced.
#[derive(Debug, Clone, Copy)]
pub struct FrameOutcome {
    /// Local virtual compute consumed by this step (excludes any network
    /// wait, which the engine accounts from event timestamps).
    pub compute: SimDuration,
    /// Whether the emitted prediction matched the frame's ground truth.
    pub correct: bool,
    /// Cache point of the hit, `None` for a full inference / miss.
    pub hit_point: Option<usize>,
}

/// Result of advancing one frame inside a driver.
#[derive(Debug)]
pub enum FrameStep<Q> {
    /// The frame finished locally.
    Done(FrameOutcome),
    /// The frame needs the server: `elapsed` local compute was spent, then
    /// `query` departs for the server. The engine delivers the reply to
    /// [`MethodDriver::resume_frame`].
    NeedServer {
        /// Local compute consumed before the query left.
        elapsed: SimDuration,
        /// The query message (its [`WireSize`] prices the uplink).
        query: Q,
    },
}

/// An uninhabited message type for protocol slots a method does not use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NoMsg {}

impl WireSize for NoMsg {
    fn wire_bytes(&self) -> usize {
        match *self {}
    }
}

/// One method (client fleet + server), plugged into the generic engine.
///
/// All methods on `&mut self`: a driver owns both the per-client and the
/// server-side state of its method (FoggyCache's shared global store, the
/// CoCa server's global table, …). `k` is the client index within the
/// scenario.
pub trait MethodDriver {
    /// Round-start request (client → server).
    type Request: WireSize;
    /// Allocation answering a request (server → client).
    type Alloc: WireSize;
    /// Mid-frame query (client → server), e.g. FoggyCache remote lookup.
    type Query: WireSize;
    /// Reply to a mid-frame query (server → client).
    type Reply: WireSize;
    /// End-of-round upload (client → server).
    type Upload: WireSize;

    /// Method name as printed in tables.
    fn name(&self) -> &str;

    /// Client `k`'s round-start cache request; `None` for methods with no
    /// allocation phase (they boot straight into frame processing).
    fn cache_request(&mut self, _k: usize) -> Option<Self::Request> {
        None
    }

    /// Server handling of a cache request: the allocation plus the server
    /// compute charged to the FIFO queue.
    fn serve_request(&mut self, _k: usize, _req: Self::Request) -> (Self::Alloc, SimDuration) {
        unreachable!("driver returned a cache request but does not serve requests")
    }

    /// Installs a delivered allocation on client `k`.
    fn install(&mut self, _k: usize, _alloc: Self::Alloc) {
        unreachable!("driver returned a cache request but does not install allocations")
    }

    /// Processes the next frame on client `k`.
    fn process_frame(&mut self, k: usize, frame: &Frame) -> FrameStep<Self::Query>;

    /// Server handling of a mid-frame query: the reply plus the server
    /// compute charged to the FIFO queue.
    fn serve_query(&mut self, _k: usize, _query: Self::Query) -> (Self::Reply, SimDuration) {
        unreachable!("driver issued a server query but does not serve queries")
    }

    /// Resumes client `k`'s paused frame once the reply arrives.
    fn resume_frame(
        &mut self,
        _k: usize,
        _frame: &Frame,
        _reply: Self::Reply,
    ) -> FrameStep<Self::Query> {
        unreachable!("driver issued a server query but does not resume frames")
    }

    /// Client `k`'s end-of-round upload, if the method uploads anything.
    fn end_round(&mut self, _k: usize) -> Option<Self::Upload> {
        None
    }

    /// Server handling of an upload: the merge compute charged to the FIFO
    /// queue (and attributed to client `k`'s summary).
    fn serve_upload(&mut self, _k: usize, _upload: Self::Upload) -> SimDuration {
        unreachable!("driver returned an upload but does not serve uploads")
    }

    /// Cell-addressed variant of [`MethodDriver::serve_request`]. The
    /// engine always calls the `_at` form; single-server drivers keep the
    /// plain form and inherit this forwarding default (cell is always 0).
    fn serve_request_at(
        &mut self,
        _cell: usize,
        k: usize,
        req: Self::Request,
    ) -> (Self::Alloc, SimDuration) {
        self.serve_request(k, req)
    }

    /// Cell-addressed variant of [`MethodDriver::serve_query`].
    fn serve_query_at(
        &mut self,
        _cell: usize,
        k: usize,
        query: Self::Query,
    ) -> (Self::Reply, SimDuration) {
        self.serve_query(k, query)
    }

    /// Cell-addressed variant of [`MethodDriver::serve_upload`].
    fn serve_upload_at(&mut self, _cell: usize, k: usize, upload: Self::Upload) -> SimDuration {
        self.serve_upload(k, upload)
    }

    /// Client `k` re-homes from `from_cell` to `to_cell` at a round
    /// boundary (its goodbye upload already departed toward `from_cell`).
    /// Multi-cell drivers move registration/watermark state here; the
    /// default does nothing. Never fired when `from_cell == to_cell`.
    fn on_migrate(&mut self, _k: usize, _from_cell: usize, _to_cell: usize) {}

    /// Peer-sync tick `seq`: the deltas each cell sends this tick. The
    /// engine prices each emission over the topology's peer link and
    /// delivers it to [`MethodDriver::sync_absorb`]. The default syncs
    /// nothing (single-server methods, baselines).
    fn sync_export(&mut self, _seq: u64) -> Vec<SyncEmit> {
        Vec::new()
    }

    /// A peer delta arrives at `emit.to_cell`: merge it and return the
    /// service time charged to that cell's FIFO, plus any follow-up
    /// emissions (e.g. the hub's broadcast once all spokes reported).
    fn sync_absorb(&mut self, _emit: &SyncEmit) -> (SimDuration, Vec<SyncEmit>) {
        (SimDuration::ZERO, Vec::new())
    }

    /// Client `k` joins the fleet mid-run (fired at its boot instant,
    /// before its first cache request). Methods with shared server state
    /// can register the newcomer here; the default does nothing.
    fn on_join(&mut self, _k: usize) {}

    /// Client `k` departs the fleet before the run's natural end (fired at
    /// its final round boundary, after its goodbye upload was handed to
    /// the link). Methods with shared server state can retire the leaver's
    /// contributions here; the default does nothing.
    fn on_leave(&mut self, _k: usize) {}

    /// Fired once when the event queue drains — the run's quiesce point.
    /// Methods with deferred server-side work (CoCa's queue-and-flush
    /// upload pipeline) apply it here so post-run inspection of server
    /// state sees every upload merged; the default does nothing.
    fn on_run_end(&mut self) {}
}

/// Method-agnostic engine knobs: how long to run and what the network and
/// boot pattern look like. Two methods compared under the same
/// `DriveConfig` and [`Scenario`] face identical contention.
#[derive(Debug, Clone, Copy)]
pub struct DriveConfig {
    /// Rounds each client executes.
    pub rounds: usize,
    /// Frames per round (CoCa's F; every method runs the same count).
    pub frames_per_round: usize,
    /// Client↔server link shared by all traffic.
    pub link: LinkModel,
    /// Clients boot uniformly at random within this window (ms).
    pub boot_window_ms: f64,
}

impl DriveConfig {
    /// Defaults: the paper's router-based WiFi testbed link and boot
    /// window — both read from `coca-net`, the single source of truth for
    /// the shared-testbed constants.
    pub fn new(rounds: usize, frames_per_round: usize) -> Self {
        Self {
            rounds,
            frames_per_round,
            link: LinkModel::testbed(),
            boot_window_ms: coca_net::TESTBED_BOOT_WINDOW_MS,
        }
    }
}

/// Default width of the windowed (per-interval) metrics buckets.
pub const DEFAULT_METRICS_WINDOW_MS: f64 = 5_000.0;

/// One fleet member's lifecycle in a [`DrivePlan`].
#[derive(Debug, Clone, Copy)]
pub struct MemberPlan {
    /// `None`: part of the base fleet, boots uniformly at random inside
    /// the boot window. `Some(ms)`: joins mid-run at that virtual instant.
    pub join_at_ms: Option<f64>,
    /// Rounds this member executes before departing (a `Leave` event
    /// truncates the base round count).
    pub rounds: usize,
    /// Frames this member processes per round — `None` inherits the
    /// plan-wide [`DrivePlan::frames_per_round`]. A heterogeneous fleet
    /// (slow dashcams next to fast road-side units) gives its members
    /// different values; each still uploads at *its own* round boundary,
    /// so fast members round-trip the server more often per virtual
    /// second. Frame streams stay keyed by per-client sequence numbers,
    /// so the cross-method digest invariant is unaffected.
    pub frames_per_round: Option<usize>,
    /// True iff a `Leave` event cut this member short — the engine then
    /// notifies [`MethodDriver::on_leave`] at the departure boundary.
    pub leaves_early: bool,
}

/// One resolved client handover (compiled from a
/// [`MigrateEvent`](crate::spec::MigrateEvent), in timeline order).
#[derive(Debug, Clone, Copy)]
pub struct MigrationPlan {
    /// The migrating client.
    pub client: usize,
    /// Fires at the end of this 1-based completed-round count.
    pub after_rounds: usize,
    /// Destination cell.
    pub to_cell: usize,
}

/// The resolved multi-edge topology of a [`DrivePlan`].
/// [`TopologyPlan::single`] is the legacy single-server world.
#[derive(Debug, Clone)]
pub struct TopologyPlan {
    /// Number of server cells (each gets its own FIFO queue).
    pub cells: usize,
    /// Initial client→cell assignment, one entry per member.
    pub assignment: Vec<usize>,
    /// Per-cell client↔cell link override; `None` keeps the client's own
    /// link schedule (the bit-identity choice for one-cell plans).
    pub cell_links: Vec<Option<LinkModel>>,
    /// Cell↔cell link pricing peer-sync traffic.
    pub peer_link: LinkModel,
    /// Peer-sync period (virtual ms); `None` disables syncing.
    pub sync_period_ms: Option<f64>,
    /// Delta exchange pattern.
    pub sync_mode: SyncMode,
    /// Handover events, in timeline order (later entries win when two
    /// target the same client and boundary).
    pub migrations: Vec<MigrationPlan>,
}

impl TopologyPlan {
    /// One cell, everyone on it, no link overrides, no sync — executes
    /// the exact event sequence of the pre-topology engine.
    pub fn single(num_clients: usize) -> Self {
        Self {
            cells: 1,
            assignment: vec![0; num_clients],
            cell_links: vec![None],
            peer_link: LinkModel::zero(),
            sync_period_ms: None,
            sync_mode: SyncMode::Gossip,
            migrations: Vec::new(),
        }
    }

    /// Whether this plan schedules peer-sync ticks.
    pub fn syncs(&self) -> bool {
        self.cells >= 2 && self.sync_period_ms.is_some()
    }

    /// The cell member `k` starts on.
    pub fn cell_of(&self, k: usize) -> usize {
        self.assignment.get(k).copied().unwrap_or(0)
    }
}

/// One peer-sync transmission: a table delta leaving `from_cell` for
/// `to_cell`. The driver keeps the payload itself, keyed by `payload`;
/// the engine only prices `bytes` over the peer link and routes the
/// delivery through the destination cell's FIFO queue.
#[derive(Debug, Clone, Copy)]
pub struct SyncEmit {
    /// Originating cell.
    pub from_cell: usize,
    /// Destination cell.
    pub to_cell: usize,
    /// Wire size of the delta (prices the peer-link transfer).
    pub bytes: usize,
    /// Driver-private payload key.
    pub payload: u64,
}

/// What the engine records, and at what granularity. The defaults
/// reproduce the committed records bit for bit; fleet-scale sweeps turn
/// per-client state off (and the mergeable histogram on) so metrics
/// memory is O(1) in the fleet size instead of O(clients).
#[derive(Debug, Clone, Copy)]
pub struct MetricsConfig {
    /// Keep one [`RunSummary`] per client (the default). When `false`,
    /// `EngineReport::per_client` holds a *single* fleet-aggregate
    /// summary — upload sojourns and frame outcomes from every client
    /// fold into index 0.
    pub per_client: bool,
    /// Also keep one [`WindowedSummary`] per client (opt-in: O(clients ×
    /// windows) memory), surfaced as `EngineReport::per_client_windowed`
    /// — e.g. a mid-run joiner's warm-up curve in isolation.
    pub per_client_windowed: bool,
    /// Additionally record every frame latency into an exactly-mergeable
    /// [`LatencyHistogram`] (`EngineReport::latency_hist`). The exact
    /// recorder still runs either way — the histogram is the streaming
    /// quantile source at fleet scale, never the reference.
    pub latency_histogram: bool,
}

impl Default for MetricsConfig {
    fn default() -> Self {
        Self {
            per_client: true,
            per_client_windowed: false,
            latency_histogram: false,
        }
    }
}

/// The fully resolved execution plan of one run: what [`drive_plan`]
/// executes. Built either statically from a [`DriveConfig`] (every member
/// boots in the window, runs the same rounds, shares one link) or from a
/// [`crate::spec::ScenarioSpec`] timeline (churn, link dynamics).
#[derive(Debug, Clone)]
pub struct DrivePlan {
    /// Frames per round (identical for every member and method).
    pub frames_per_round: usize,
    /// Base-fleet boot window (ms).
    pub boot_window_ms: f64,
    /// One entry per fleet member, joiners last (their indices extend the
    /// base fleet's).
    pub members: Vec<MemberPlan>,
    /// Per-member link schedule, parallel to `members`.
    pub links: Vec<LinkSchedule>,
    /// Width of the windowed-metrics buckets (ms).
    pub metrics_window_ms: f64,
    /// Recording granularity (defaults regenerate the committed records).
    pub metrics: MetricsConfig,
    /// Server-cell topology ([`TopologyPlan::single`] = the legacy path).
    pub topology: TopologyPlan,
}

impl DrivePlan {
    /// The static plan a [`DriveConfig`] induces over `num_clients`
    /// members: everyone boots in the window, runs `cfg.rounds` rounds and
    /// shares `cfg.link`. [`drive`] under this plan is bit-identical to
    /// the pre-dynamics engine.
    pub fn from_config(cfg: &DriveConfig, num_clients: usize) -> Self {
        Self {
            frames_per_round: cfg.frames_per_round,
            boot_window_ms: cfg.boot_window_ms,
            members: vec![
                MemberPlan {
                    join_at_ms: None,
                    rounds: cfg.rounds,
                    frames_per_round: None,
                    leaves_early: false,
                };
                num_clients
            ],
            links: vec![LinkSchedule::fixed(cfg.link); num_clients],
            metrics_window_ms: DEFAULT_METRICS_WINDOW_MS,
            metrics: MetricsConfig::default(),
            topology: TopologyPlan::single(num_clients),
        }
    }

    /// Frames member `k` processes per round (its override, else the
    /// plan-wide value).
    pub fn member_frames(&self, k: usize) -> usize {
        self.members[k]
            .frames_per_round
            .unwrap_or(self.frames_per_round)
    }

    /// Total frames the plan consumes across all members.
    pub fn total_frames(&self) -> u64 {
        self.members
            .iter()
            .map(|m| (m.rounds * m.frames_per_round.unwrap_or(self.frames_per_round)) as u64)
            .sum()
    }
}

/// SplitMix64 finalizer used by the frame digest.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Order-independent digest contribution of one consumed frame. Public so
/// the engine-overhead bench can measure the digest component in
/// isolation (stream-gen / digest / scheduling split in `BENCH_engine.json`).
pub fn frame_digest(k: usize, frame: &Frame) -> u64 {
    let mut h = mix64(k as u64 ^ 0xC0CA);
    h = mix64(h ^ frame.seq);
    h = mix64(h ^ frame.class as u64);
    h = mix64(h ^ frame.frame_seed);
    h = mix64(h ^ frame.run_seed);
    h = mix64(h ^ frame.difficulty.to_bits() as u64);
    h
}

enum Ev<D: MethodDriver> {
    /// A no-request client boots straight into its frames.
    Begin { k: usize },
    /// A mid-run joiner boots: [`MethodDriver::on_join`] fires, then its
    /// first cache request (or first frame) departs.
    Join { k: usize },
    /// A cache request arrives at its cell (captured at emission, so a
    /// migration between send and arrival cannot reroute it).
    Request {
        k: usize,
        cell: usize,
        sent: SimTime,
        req: D::Request,
    },
    /// An allocation reaches the client.
    Deliver {
        k: usize,
        sent: SimTime,
        alloc: D::Alloc,
    },
    /// A mid-frame query arrives at its cell.
    Query {
        k: usize,
        cell: usize,
        sent: SimTime,
        query: D::Query,
    },
    /// A query reply reaches the client.
    Reply {
        k: usize,
        sent: SimTime,
        reply: D::Reply,
    },
    /// An end-of-round upload arrives at its cell — the cell the client
    /// was on when the round ended, so a handover's goodbye upload still
    /// drains at the *old* cell.
    Upload {
        k: usize,
        cell: usize,
        upload: D::Upload,
    },
    /// A peer-sync tick: every cell exports its deltas.
    SyncFire { seq: u64 },
    /// A peer delta arrives at `emit.to_cell`'s FIFO.
    SyncDeliver { emit: SyncEmit },
}

/// Per-client engine-side bookkeeping, kept to 16 bytes so a million-member
/// fleet costs 16 MB of state instead of gigabytes: round/frame counters
/// are `u32` (a plan cannot exceed 2³² of either per member) and the rare
/// paused-frame case is boxed out of line.
struct ClientState {
    rounds_left: u32,
    frames_done: u32,
    /// A frame paused on a server query: the frame plus the local compute
    /// and network wait accumulated so far. Boxed — only clients with a
    /// query in flight pay for it, and an idle member stays pointer-sized
    /// here instead of carrying an inline `Frame`.
    pending: Option<Box<(Frame, SimDuration)>>,
}

struct Exec<D: MethodDriver> {
    plan: DrivePlan,
    streams: Vec<StreamGenerator>,
    events: EventQueue<Ev<D>>,
    /// One FIFO per server cell (index = cell id; single-server plans
    /// have exactly one).
    queues: Vec<ServerQueue>,
    /// Current cell of each client (starts at the topology assignment,
    /// updated by migrations at round boundaries).
    cell: Vec<usize>,
    /// Members still running rounds — peer-sync ticks stop rescheduling
    /// once this hits zero, letting the event queue drain.
    active: usize,
    st: Vec<ClientState>,
    /// One per client, or a single fleet aggregate when
    /// `metrics.per_client` is off (see [`MetricsConfig`]).
    summaries: Vec<RunSummary>,
    /// Fleet-wide hit/accuracy totals, recorded on the per-frame path —
    /// integer counts, so identical to merging the per-client recorders.
    fleet_hits: coca_metrics::HitRecorder,
    fleet_acc: coca_metrics::AccuracyRecorder,
    latency: LatencyRecorder,
    latency_hist: Option<coca_metrics::LatencyHistogram>,
    response_latency: LatencyRecorder,
    windowed: WindowedSummary,
    /// Parallel to `summaries`' clients when `metrics.per_client_windowed`
    /// is on; empty otherwise.
    per_client_windowed: Vec<WindowedSummary>,
    digest: u64,
    end_time: SimTime,
}

impl<D: MethodDriver> Exec<D> {
    /// Client `k`'s client↔cell transfer time at instant `t`: the cell's
    /// link override when its current cell has one, else the client's own
    /// link schedule — the exact legacy float path, so one-cell plans
    /// with no override stay bit-identical.
    #[inline]
    fn xfer(&self, k: usize, t: SimTime, bytes: usize) -> SimDuration {
        match self.plan.topology.cell_links[self.cell[k]] {
            Some(link) => link.transfer_time(bytes),
            None => self.plan.links[k].transfer_time(t, bytes),
        }
    }

    /// Index of client `k`'s summary slot (0 when aggregating fleet-wide).
    #[inline]
    fn sum_idx(&self, k: usize) -> usize {
        if self.plan.metrics.per_client {
            k
        } else {
            0
        }
    }

    fn record_frame(&mut self, k: usize, total: SimDuration, o: &FrameOutcome, done_at: SimTime) {
        let s = &mut self.summaries[if self.plan.metrics.per_client { k } else { 0 }];
        s.latency.record(total);
        s.accuracy.record(o.correct);
        match o.hit_point {
            Some(p) => s.hits.record_hit(p, o.correct),
            None => s.hits.record_miss(o.correct),
        }
        self.fleet_acc.record(o.correct);
        match o.hit_point {
            Some(p) => self.fleet_hits.record_hit(p, o.correct),
            None => self.fleet_hits.record_miss(o.correct),
        }
        self.latency.record(total);
        if let Some(h) = self.latency_hist.as_mut() {
            h.record(total);
        }
        self.windowed.record(
            done_at.as_millis_f64(),
            total.as_millis_f64(),
            o.correct,
            o.hit_point.is_some(),
        );
        if let Some(w) = self.per_client_windowed.get_mut(k) {
            w.record(
                done_at.as_millis_f64(),
                total.as_millis_f64(),
                o.correct,
                o.hit_point.is_some(),
            );
        }
    }

    /// Runs client `k`'s frames synchronously in virtual time starting at
    /// `t`, until the round pauses on a server query or the client's
    /// rounds are exhausted. All link costs resolve against `k`'s link
    /// schedule at the emission instant.
    fn run_frames(&mut self, driver: &mut D, k: usize, mut t: SimTime) {
        let f = self.plan.member_frames(k) as u32;
        loop {
            if self.st[k].frames_done == f {
                self.st[k].frames_done = 0;
                self.st[k].rounds_left -= 1;
                // The client is busy until its upload is handed to the
                // link; the next request (or round) starts after that.
                // The upload's cell is captured *before* any migration at
                // this boundary: a handover's goodbye upload drains at
                // the old cell.
                let mut free_at = t;
                if let Some(upload) = driver.end_round(k) {
                    free_at = t + self.xfer(k, t, upload.wire_bytes());
                    self.events.schedule(
                        free_at,
                        Ev::Upload {
                            k,
                            cell: self.cell[k],
                            upload,
                        },
                    );
                }
                if self.st[k].rounds_left == 0 {
                    if self.plan.members[k].leaves_early {
                        // The leaver departs here; its goodbye upload (if
                        // any) is already on the link and drains through
                        // the FIFO behind it.
                        driver.on_leave(k);
                    }
                    self.active -= 1;
                    self.end_time = self.end_time.max(free_at);
                    return;
                }
                // Handover boundary: migrations keyed to this completed
                // round re-home the client before its next request, so
                // the request re-allocates at the new cell. Timeline
                // order applies (later entries win).
                let completed = self.plan.members[k].rounds - self.st[k].rounds_left as usize;
                for i in 0..self.plan.topology.migrations.len() {
                    let m = self.plan.topology.migrations[i];
                    if m.client == k && m.after_rounds == completed && self.cell[k] != m.to_cell {
                        driver.on_migrate(k, self.cell[k], m.to_cell);
                        self.cell[k] = m.to_cell;
                    }
                }
                t = free_at;
                if let Some(req) = driver.cache_request(k) {
                    self.events.schedule(
                        t + self.xfer(k, t, req.wire_bytes()),
                        Ev::Request {
                            k,
                            cell: self.cell[k],
                            sent: t,
                            req,
                        },
                    );
                    self.end_time = self.end_time.max(t);
                    return;
                }
                continue;
            }
            let frame = self.streams[k].next_frame();
            self.digest ^= frame_digest(k, &frame);
            match driver.process_frame(k, &frame) {
                FrameStep::Done(o) => {
                    self.record_frame(k, o.compute, &o, t + o.compute);
                    t += o.compute;
                    self.st[k].frames_done += 1;
                }
                FrameStep::NeedServer { elapsed, query } => {
                    t += elapsed;
                    self.st[k].pending = Some(Box::new((frame, elapsed)));
                    self.events.schedule(
                        t + self.xfer(k, t, query.wire_bytes()),
                        Ev::Query {
                            k,
                            cell: self.cell[k],
                            sent: t,
                            query,
                        },
                    );
                    self.end_time = self.end_time.max(t);
                    return;
                }
            }
        }
    }

    /// Boots client `k` at instant `now`: first cache request (or first
    /// frame) departs immediately.
    fn boot(&mut self, driver: &mut D, k: usize, now: SimTime) {
        match driver.cache_request(k) {
            Some(req) => {
                self.events.schedule(
                    now + self.xfer(k, now, req.wire_bytes()),
                    Ev::Request {
                        k,
                        cell: self.cell[k],
                        sent: now,
                        req,
                    },
                );
            }
            None => self.run_frames(driver, k, now),
        }
    }
}

/// Runs `driver` over `scenario` for `cfg.rounds × cfg.frames_per_round`
/// frames per client and returns the aggregated report. Shorthand for
/// [`drive_plan`] under the static plan `cfg` induces.
pub fn drive<D: MethodDriver>(
    scenario: &Scenario,
    driver: &mut D,
    cfg: &DriveConfig,
) -> EngineReport {
    drive_plan(
        scenario,
        driver,
        &DrivePlan::from_config(cfg, scenario.config().num_clients),
    )
}

/// Runs `driver` over `scenario` under an explicit [`DrivePlan`] —
/// possibly with mid-run joins, early leaves and time-varying links.
///
/// # Panics
/// Panics if the plan's member count disagrees with the scenario's client
/// count (a spec-materialized pair always agrees).
pub fn drive_plan<D: MethodDriver>(
    scenario: &Scenario,
    driver: &mut D,
    plan: &DrivePlan,
) -> EngineReport {
    let n = scenario.config().num_clients;
    assert_eq!(
        plan.members.len(),
        n,
        "plan members must match scenario clients"
    );
    assert_eq!(
        plan.links.len(),
        n,
        "plan links must match scenario clients"
    );
    assert_eq!(
        plan.topology.cell_links.len(),
        plan.topology.cells,
        "topology must carry one link slot per cell"
    );
    let l = scenario.rt.num_cache_points();
    let summary_slots = if plan.metrics.per_client { n } else { 1 };
    let mut exec: Exec<D> = Exec {
        plan: plan.clone(),
        streams: (0..n).map(|k| scenario.stream(k)).collect(),
        events: EventQueue::new(),
        queues: (0..plan.topology.cells)
            .map(|_| ServerQueue::new())
            .collect(),
        cell: (0..n).map(|k| plan.topology.cell_of(k)).collect(),
        active: plan.members.iter().filter(|m| m.rounds > 0).count(),
        st: (0..n)
            .map(|k| ClientState {
                rounds_left: u32::try_from(plan.members[k].rounds)
                    .expect("member round budget exceeds u32"),
                frames_done: 0,
                pending: None,
            })
            .collect(),
        summaries: (0..summary_slots).map(|_| RunSummary::new(l)).collect(),
        fleet_hits: coca_metrics::HitRecorder::new(l),
        fleet_acc: coca_metrics::AccuracyRecorder::new(),
        latency: LatencyRecorder::new(),
        latency_hist: plan
            .metrics
            .latency_histogram
            .then(coca_metrics::LatencyHistogram::new),
        response_latency: LatencyRecorder::new(),
        windowed: WindowedSummary::new(plan.metrics_window_ms),
        per_client_windowed: if plan.metrics.per_client_windowed {
            (0..n)
                .map(|_| WindowedSummary::new(plan.metrics_window_ms))
                .collect()
        } else {
            Vec::new()
        },
        digest: 0,
        end_time: SimTime::ZERO,
    };

    // Base-fleet staggered boots (same seed path as the original
    // CoCa-only engine — a static plan reproduces it bit for bit); mid-run
    // joiners get a boot event at their join instant instead.
    let boot_seeds = scenario.seeds().child("boot");
    for k in 0..n {
        if plan.members[k].rounds == 0 {
            continue;
        }
        match plan.members[k].join_at_ms {
            None => {
                let mut rng = boot_seeds.child_idx("client", k as u64).rng();
                let at =
                    SimTime::from_millis_f64(rng.gen_range(0.0..plan.boot_window_ms.max(1e-9)));
                match driver.cache_request(k) {
                    Some(req) => exec.events.schedule(
                        at + exec.xfer(k, at, req.wire_bytes()),
                        Ev::Request {
                            k,
                            cell: exec.cell[k],
                            sent: at,
                            req,
                        },
                    ),
                    None => exec.events.schedule(at, Ev::Begin { k }),
                }
            }
            Some(ms) => {
                exec.events
                    .schedule(SimTime::from_millis_f64(ms), Ev::Join { k });
            }
        }
    }

    // Peer-sync ticks: the first fires one period in; each tick
    // reschedules the next while any member is still running rounds.
    if plan.topology.syncs() {
        let period = plan
            .topology
            .sync_period_ms
            .expect("syncs() implies a period");
        exec.events
            .schedule(SimTime::from_millis_f64(period), Ev::SyncFire { seq: 0 });
    }

    while let Some(ev) = exec.events.pop() {
        let now = ev.at;
        exec.end_time = exec.end_time.max(now);
        match ev.payload {
            Ev::Begin { k } => exec.run_frames(driver, k, now),
            Ev::Join { k } => {
                driver.on_join(k);
                exec.boot(driver, k, now);
            }
            Ev::Request { k, cell, sent, req } => {
                let (alloc, service) = driver.serve_request_at(cell, k, req);
                let done = exec.queues[cell].serve(now, service);
                exec.events.schedule(
                    done.finish + exec.xfer(k, done.finish, alloc.wire_bytes()),
                    Ev::Deliver { k, sent, alloc },
                );
            }
            Ev::Deliver { k, sent, alloc } => {
                exec.response_latency.record(now.saturating_since(sent));
                driver.install(k, alloc);
                exec.run_frames(driver, k, now);
            }
            Ev::Query {
                k,
                cell,
                sent,
                query,
            } => {
                let (reply, service) = driver.serve_query_at(cell, k, query);
                let done = exec.queues[cell].serve(now, service);
                exec.events.schedule(
                    done.finish + exec.xfer(k, done.finish, reply.wire_bytes()),
                    Ev::Reply { k, sent, reply },
                );
            }
            Ev::Reply { k, sent, reply } => {
                exec.response_latency.record(now.saturating_since(sent));
                let (frame, mut elapsed) = *exec.st[k]
                    .pending
                    .take()
                    .expect("reply without a paused frame");
                elapsed += now.saturating_since(sent);
                match driver.resume_frame(k, &frame, reply) {
                    FrameStep::Done(o) => {
                        exec.record_frame(k, elapsed + o.compute, &o, now + o.compute);
                        exec.st[k].frames_done += 1;
                        exec.run_frames(driver, k, now + o.compute);
                    }
                    FrameStep::NeedServer {
                        elapsed: more,
                        query,
                    } => {
                        let t = now + more;
                        exec.st[k].pending = Some(Box::new((frame, elapsed + more)));
                        exec.events.schedule(
                            t + exec.xfer(k, t, query.wire_bytes()),
                            Ev::Query {
                                k,
                                cell: exec.cell[k],
                                sent: t,
                                query,
                            },
                        );
                    }
                }
            }
            Ev::Upload { k, cell, upload } => {
                let service = driver.serve_upload_at(cell, k, upload);
                let svc = exec.queues[cell].serve(now, service);
                // Attribute the upload's queue sojourn (wait + merge
                // compute) to the uploading client's summary.
                let s = exec.sum_idx(k);
                exec.summaries[s].upload.record(svc.sojourn_since(now));
            }
            Ev::SyncFire { seq } => {
                if exec.active > 0 {
                    for emit in driver.sync_export(seq) {
                        exec.events.schedule(
                            now + exec.plan.topology.peer_link.transfer_time(emit.bytes),
                            Ev::SyncDeliver { emit },
                        );
                    }
                    let period = exec
                        .plan
                        .topology
                        .sync_period_ms
                        .expect("sync tick without a period");
                    exec.events.schedule(
                        now + SimDuration::from_millis_f64(period),
                        Ev::SyncFire { seq: seq + 1 },
                    );
                }
            }
            Ev::SyncDeliver { emit } => {
                let (service, follow) = driver.sync_absorb(&emit);
                let svc = exec.queues[emit.to_cell].serve(now, service);
                for f in follow {
                    exec.events.schedule(
                        svc.finish + exec.plan.topology.peer_link.transfer_time(f.bytes),
                        Ev::SyncDeliver { emit: f },
                    );
                }
            }
        }
    }

    driver.on_run_end();

    // Fleet hit/accuracy totals come off the always-on per-frame
    // recorders — integer counts, bit-identical to the former end-of-run
    // merge over per-client summaries (and available even when the plan
    // keeps no per-client state).
    EngineReport {
        frames: exec.latency.count(),
        mean_latency_ms: exec.latency.mean_ms(),
        accuracy_pct: exec.fleet_acc.accuracy_pct(),
        hit_ratio: exec.fleet_hits.hit_ratio(),
        latency: exec.latency,
        latency_hist: exec.latency_hist,
        response_latency: exec.response_latency,
        windowed: exec.windowed,
        per_client: exec.summaries,
        per_client_windowed: exec.per_client_windowed,
        absorb: crate::client::AbsorbStats::default(),
        frame_digest: exec.digest,
        end_time: exec.end_time,
    }
}
