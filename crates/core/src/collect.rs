//! The cache-update table U and the two sample-selection rules (§IV.C).
//!
//! During local inference the client absorbs selected samples' semantic
//! vectors into a table with the same logical shape as the server's global
//! cache (classes × layers). Per Eq. 3, each absorbed vector updates
//!
//! ```text
//! U_{i,j} ← normalize(V_{i,j} + β · U_{i,j})        β = 0.95
//! ```
//!
//! Samples qualify under one of two rules:
//!
//! 1. **Reinforcement** — a cache hit whose discriminative score exceeds Γ:
//!    vectors collected only up to the hit layer (the model stopped there).
//! 2. **Expansion** — a cache miss whose softmax margin `prob₁ − prob₂`
//!    exceeds Δ: vectors collected at every preset layer (the full model
//!    ran, so all intermediate features exist).
//!
//! Both rules label the vectors with the *predicted* class — clients have
//! no ground truth. Ambiguous-but-confident misclassifications therefore
//! pollute U occasionally; Fig. 6's Γ/Δ trade-off measures exactly this.
//!
//! ## Layout
//!
//! The table is stored **columnar, grouped by layer**: each populated
//! layer keeps its cell classes next to one contiguous
//! [`VectorStore`] of update vectors. That is the shape the server's
//! per-layer batched Eq. 4 merge consumes directly — the upload arrives
//! already grouped, so the merge streams one flat buffer per layer
//! instead of chasing per-cell heap rows. The in-place Eq. 3 decay-add
//! runs through the fused [`coca_math::merge_weighted_row`] kernel
//! (bit-identical to the seed `scale`/`axpy`/`l2_normalize` sequence).

use coca_math::vector::l2_normalize;
use coca_math::{merge_weighted_row, snap_row, Precision, VectorStore};
use serde::{Deserialize, Serialize};

/// Why a sample was absorbed (diagnostics + Fig. 6 accounting).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AbsorbRule {
    /// Rule 1: high-confidence cache hit.
    Reinforce,
    /// Rule 2: high-margin cache miss.
    Expand,
}

/// One layer's populated cells: classes parallel to store rows, in
/// absorption order (deterministic — frame processing is).
#[derive(Debug, Clone)]
pub struct LayerUpdate {
    /// The preset cache layer these cells belong to.
    pub layer: u32,
    /// Cell classes, parallel to the rows of `vectors`.
    pub classes: Vec<u32>,
    /// Running unit-norm semantic centers, one row per cell.
    pub vectors: VectorStore,
}

/// The client's sparse cache-update table, grouped by layer.
///
/// Serializes as a sorted list of `(class, layer, vector)` triples — JSON
/// (the TCP transport's payload format) cannot encode tuple-keyed maps —
/// via the manual impls below. The wire format is unchanged from the
/// boxed-row representation.
#[derive(Debug, Clone, Default)]
pub struct UpdateTable {
    /// Populated layers, sorted by layer id.
    layers: Vec<LayerUpdate>,
}

impl Serialize for UpdateTable {
    fn to_value(&self) -> serde::Value {
        let mut triples: Vec<(u32, u32, &[f32])> = self
            .layers
            .iter()
            .flat_map(|g| {
                g.classes
                    .iter()
                    .zip(g.vectors.iter_rows())
                    .map(move |(&c, v)| (c, g.layer, v))
            })
            .collect();
        // Sorted so the wire format is deterministic across layouts.
        triples.sort_by_key(|&(c, l, _)| (c, l));
        triples.to_value()
    }
}

impl Deserialize for UpdateTable {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let triples: Vec<(u32, u32, Vec<f32>)> = Deserialize::from_value(v)?;
        let mut table = Self::default();
        for (c, l, v) in triples {
            if v.is_empty() {
                return Err(serde::Error::custom("UpdateTable: empty cell vector"));
            }
            if table.get(c as usize, l as usize).is_some() {
                return Err(serde::Error::custom(format!(
                    "UpdateTable: duplicate cell ({c}, {l})"
                )));
            }
            // Wire vectors are stored as-is (the sender normalized them).
            let g = table.layer_entry(l, v.len());
            if g.vectors.dim() != v.len() {
                // The wire boundary must error, not panic, on a table
                // whose layer mixes vector dimensions.
                return Err(serde::Error::custom(format!(
                    "UpdateTable: layer {l} mixes dims {} and {}",
                    g.vectors.dim(),
                    v.len()
                )));
            }
            g.push(c, &v);
        }
        Ok(table)
    }
}

impl LayerUpdate {
    fn push(&mut self, class: u32, vector: &[f32]) {
        self.classes.push(class);
        self.vectors.push_row(vector);
    }

    /// Row index of `class`, if the cell exists. A linear scan: the scan
    /// length is the cells absorbed into this layer this round (≤ the
    /// class count), and each absorb amortizes it against the Eq. 3
    /// vector math over the full entry dimension — keeping the rows in
    /// absorption order beats a sorted layout that would memmove the
    /// contiguous store on every new cell.
    fn position(&self, class: u32) -> Option<usize> {
        self.classes.iter().position(|&c| c == class)
    }

    /// Number of populated cells in this layer.
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// True iff the layer group holds no cells.
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }
}

impl UpdateTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// The layer group for `layer`, created (with `dim` fixed) if absent.
    fn layer_entry(&mut self, layer: u32, dim: usize) -> &mut LayerUpdate {
        let at = match self.layers.binary_search_by_key(&layer, |g| g.layer) {
            Ok(i) => i,
            Err(i) => {
                self.layers.insert(
                    i,
                    LayerUpdate {
                        layer,
                        classes: Vec::new(),
                        vectors: VectorStore::new(dim),
                    },
                );
                i
            }
        };
        &mut self.layers[at]
    }

    /// The layer group for `layer`, if any cell was absorbed there.
    pub fn layer_group(&self, layer: u32) -> Option<&LayerUpdate> {
        self.layers
            .binary_search_by_key(&layer, |g| g.layer)
            .ok()
            .map(|i| &self.layers[i])
    }

    /// Populated layer groups, ascending by layer id — the shape the
    /// server's per-layer batched merge consumes.
    pub fn layer_groups(&self) -> &[LayerUpdate] {
        &self.layers
    }

    /// Absorbs one semantic vector for `(class, layer)` with decay `beta`
    /// (Eq. 3), then re-normalizes.
    pub fn absorb(&mut self, class: usize, layer: usize, vector: &[f32], beta: f32) {
        let g = self.layer_entry(layer as u32, vector.len());
        match g.position(class as u32) {
            Some(row) => {
                let u = g.vectors.row_mut(row);
                debug_assert_eq!(u.len(), vector.len(), "dim mismatch in update table");
                // U ← V + β·U, normalized — one fused pass, bit-identical
                // to the seed scale → axpy → l2_normalize sequence.
                merge_weighted_row(u, vector, beta, 1.0);
            }
            None => {
                let mut v = vector.to_vec();
                l2_normalize(&mut v);
                g.push(class as u32, &v);
            }
        }
    }

    /// The entry for `(class, layer)`, if any sample was absorbed.
    pub fn get(&self, class: usize, layer: usize) -> Option<&[f32]> {
        let g = self.layer_group(layer as u32)?;
        g.position(class as u32).map(|row| g.vectors.row(row))
    }

    /// Number of populated cells.
    pub fn len(&self) -> usize {
        self.layers.iter().map(|g| g.classes.len()).sum()
    }

    /// True iff nothing was absorbed this round.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Iterates populated cells as `(class, layer, vector)`, layer-major
    /// (cells within a layer in absorption order).
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, &[f32])> {
        self.layers.iter().flat_map(|g| {
            g.classes
                .iter()
                .zip(g.vectors.iter_rows())
                .map(move |(&c, v)| (c as usize, g.layer as usize, v))
        })
    }

    /// Drains the table for upload, leaving it empty for the next round.
    pub fn take(&mut self) -> UpdateTable {
        UpdateTable {
            layers: std::mem::take(&mut self.layers),
        }
    }

    /// Logical wire size: 8-byte key + dense f32 vector per cell.
    pub fn wire_bytes(&self) -> usize {
        self.wire_bytes_at(Precision::F32)
    }

    /// Logical wire size with the vectors shipped at `precision`:
    /// 8-byte key per cell plus the quantized payload (i8 carries one
    /// f32 scale per row). [`Precision::F32`] reproduces
    /// [`UpdateTable::wire_bytes`].
    pub fn wire_bytes_at(&self, precision: Precision) -> usize {
        self.layers
            .iter()
            .map(|g| g.len() * 8 + precision.payload_bytes(g.len(), g.vectors.dim()))
            .sum()
    }

    /// Snaps every cell vector onto `precision`'s representable grid
    /// (quantize → dequantize in place; a no-op for [`Precision::F32`]).
    /// The sender calls this before upload so the f32 values it ships
    /// *are* the dequantized codes — the link prices the quantized
    /// payload via [`UpdateTable::wire_bytes_at`] while the JSON debug
    /// transport stays f32 triples. Vectors are intentionally **not**
    /// re-normalized: the slight non-unit norm is the honest
    /// quantization error, and the server's Eq. 4 merge renormalizes.
    pub fn quantize_in_place(&mut self, precision: Precision) {
        if precision == Precision::F32 {
            return;
        }
        for g in &mut self.layers {
            for i in 0..g.vectors.rows() {
                snap_row(g.vectors.row_mut(i), precision);
            }
        }
    }
}

/// Decides whether an inference outcome qualifies for collection.
///
/// * `hit_score` — `Some(D_j)` for hits, `None` for misses.
/// * `miss_margin` — `Some(prob₁ − prob₂)` for misses.
pub fn absorb_rule(
    hit_score: Option<f32>,
    miss_margin: Option<f32>,
    gamma: f32,
    delta: f32,
) -> Option<AbsorbRule> {
    match (hit_score, miss_margin) {
        (Some(d), _) if d > gamma => Some(AbsorbRule::Reinforce),
        (Some(_), _) => None,
        (None, Some(m)) if m > delta => Some(AbsorbRule::Expand),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coca_math::{cosine, l2_norm};

    #[test]
    fn absorb_keeps_unit_norm() {
        let mut u = UpdateTable::new();
        u.absorb(2, 5, &[3.0, 4.0], 0.95);
        let v = u.get(2, 5).unwrap();
        assert!((l2_norm(v) - 1.0).abs() < 1e-5);
        u.absorb(2, 5, &[0.0, 1.0], 0.95);
        assert!((l2_norm(u.get(2, 5).unwrap()) - 1.0).abs() < 1e-5);
        assert_eq!(u.len(), 1);
    }

    #[test]
    fn repeated_absorption_tracks_new_direction() {
        let mut u = UpdateTable::new();
        u.absorb(0, 0, &[1.0, 0.0], 0.95);
        // Stream of orthogonal vectors should pull the entry over.
        for _ in 0..200 {
            u.absorb(0, 0, &[0.0, 1.0], 0.95);
        }
        let v = u.get(0, 0).unwrap();
        assert!(cosine(v, &[0.0, 1.0]) > 0.99, "entry {v:?}");
    }

    #[test]
    fn beta_zero_means_last_sample_wins() {
        let mut u = UpdateTable::new();
        u.absorb(1, 1, &[1.0, 0.0], 0.0);
        u.absorb(1, 1, &[0.0, 2.0], 0.0);
        assert!(cosine(u.get(1, 1).unwrap(), &[0.0, 1.0]) > 0.999);
    }

    #[test]
    fn take_drains_for_upload() {
        let mut u = UpdateTable::new();
        u.absorb(0, 0, &[1.0, 0.0], 0.95);
        u.absorb(1, 3, &[0.0, 1.0], 0.95);
        assert_eq!(u.wire_bytes(), 2 * (8 + 8));
        let uploaded = u.take();
        assert_eq!(uploaded.len(), 2);
        assert!(u.is_empty());
        let cells: Vec<(usize, usize)> = uploaded.iter().map(|(c, l, _)| (c, l)).collect();
        assert!(cells.contains(&(0, 0)) && cells.contains(&(1, 3)));
    }

    #[test]
    fn cells_group_by_layer_in_ascending_order() {
        let mut u = UpdateTable::new();
        u.absorb(5, 9, &[1.0, 0.0], 0.95);
        u.absorb(2, 1, &[0.0, 1.0], 0.95);
        u.absorb(7, 9, &[1.0, 0.0], 0.95);
        let groups = u.layer_groups();
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].layer, 1);
        assert_eq!(groups[1].layer, 9);
        assert_eq!(groups[1].classes, vec![5, 7], "absorption order kept");
        assert_eq!(groups[1].vectors.rows(), 2);
        assert!(!groups[0].is_empty());
        assert_eq!(groups[0].len(), 1);
    }

    #[test]
    fn serde_round_trips_populated_tables() {
        let mut u = UpdateTable::new();
        u.absorb(3, 7, &[1.0, 0.0], 0.95);
        u.absorb(0, 0, &[0.0, 1.0], 0.95);
        let json = serde_json::to_string(&u).expect("tuple keys must not leak into JSON");
        let back: UpdateTable = serde_json::from_str(&json).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back.get(3, 7).unwrap(), u.get(3, 7).unwrap());
        // Malformed wire tables are rejected (errors, never panics).
        assert!(serde_json::from_str::<UpdateTable>("[[1,2,[]]]").is_err());
        assert!(serde_json::from_str::<UpdateTable>("[[1,2,[1.0]],[1,2,[0.5]]]").is_err());
        // A layer mixing vector dimensions must error through the Result
        // path, not trip the VectorStore dim assert.
        assert!(serde_json::from_str::<UpdateTable>("[[0,2,[1.0]],[1,2,[0.5,0.5]]]").is_err());
    }

    #[test]
    fn rules_match_paper_conditions() {
        let (g, d) = (0.10, 0.25);
        // Hit above Γ → reinforce; at/below Γ → nothing (even with margin).
        assert_eq!(
            absorb_rule(Some(0.2), None, g, d),
            Some(AbsorbRule::Reinforce)
        );
        assert_eq!(absorb_rule(Some(0.05), Some(0.9), g, d), None);
        // Miss above Δ → expand; below → nothing.
        assert_eq!(absorb_rule(None, Some(0.3), g, d), Some(AbsorbRule::Expand));
        assert_eq!(absorb_rule(None, Some(0.2), g, d), None);
        assert_eq!(absorb_rule(None, None, g, d), None);
    }
}
