//! The cache-update table U and the two sample-selection rules (§IV.C).
//!
//! During local inference the client absorbs selected samples' semantic
//! vectors into a table with the same logical shape as the server's global
//! cache (classes × layers). Per Eq. 3, each absorbed vector updates
//!
//! ```text
//! U_{i,j} ← normalize(V_{i,j} + β · U_{i,j})        β = 0.95
//! ```
//!
//! Samples qualify under one of two rules:
//!
//! 1. **Reinforcement** — a cache hit whose discriminative score exceeds Γ:
//!    vectors collected only up to the hit layer (the model stopped there).
//! 2. **Expansion** — a cache miss whose softmax margin `prob₁ − prob₂`
//!    exceeds Δ: vectors collected at every preset layer (the full model
//!    ran, so all intermediate features exist).
//!
//! Both rules label the vectors with the *predicted* class — clients have
//! no ground truth. Ambiguous-but-confident misclassifications therefore
//! pollute U occasionally; Fig. 6's Γ/Δ trade-off measures exactly this.

use std::collections::HashMap;

use coca_math::vector::{axpy, l2_normalize, scale};
use serde::{Deserialize, Serialize};

/// Why a sample was absorbed (diagnostics + Fig. 6 accounting).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AbsorbRule {
    /// Rule 1: high-confidence cache hit.
    Reinforce,
    /// Rule 2: high-margin cache miss.
    Expand,
}

/// The client's sparse cache-update table.
///
/// Serializes as a sorted list of `(class, layer, vector)` triples — JSON
/// (the TCP transport's payload format) cannot encode tuple-keyed maps —
/// via the manual impls below.
#[derive(Debug, Clone, Default)]
pub struct UpdateTable {
    /// `(class, layer) → running unit-norm semantic center`.
    entries: HashMap<(u32, u32), Vec<f32>>,
}

impl Serialize for UpdateTable {
    fn to_value(&self) -> serde::Value {
        let mut triples: Vec<(u32, u32, &Vec<f32>)> =
            self.entries.iter().map(|(&(c, l), v)| (c, l, v)).collect();
        // Sorted so the wire format is deterministic across HashMap states.
        triples.sort_by_key(|&(c, l, _)| (c, l));
        triples.to_value()
    }
}

impl Deserialize for UpdateTable {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let triples: Vec<(u32, u32, Vec<f32>)> = Deserialize::from_value(v)?;
        Ok(Self {
            entries: triples.into_iter().map(|(c, l, v)| ((c, l), v)).collect(),
        })
    }
}

impl UpdateTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Absorbs one semantic vector for `(class, layer)` with decay `beta`
    /// (Eq. 3), then re-normalizes.
    pub fn absorb(&mut self, class: usize, layer: usize, vector: &[f32], beta: f32) {
        let key = (class as u32, layer as u32);
        match self.entries.get_mut(&key) {
            Some(u) => {
                debug_assert_eq!(u.len(), vector.len(), "dim mismatch in update table");
                // U ← V + β·U, normalized.
                scale(beta, u);
                axpy(1.0, vector, u);
                l2_normalize(u);
            }
            None => {
                let mut v = vector.to_vec();
                l2_normalize(&mut v);
                self.entries.insert(key, v);
            }
        }
    }

    /// The entry for `(class, layer)`, if any sample was absorbed.
    pub fn get(&self, class: usize, layer: usize) -> Option<&[f32]> {
        self.entries
            .get(&(class as u32, layer as u32))
            .map(|v| v.as_slice())
    }

    /// Number of populated cells.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True iff nothing was absorbed this round.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates populated cells as `(class, layer, vector)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, &[f32])> {
        self.entries
            .iter()
            .map(|(&(c, l), v)| (c as usize, l as usize, v.as_slice()))
    }

    /// Drains the table for upload, leaving it empty for the next round.
    pub fn take(&mut self) -> UpdateTable {
        UpdateTable {
            entries: std::mem::take(&mut self.entries),
        }
    }

    /// Logical wire size: 8-byte key + dense f32 vector per cell.
    pub fn wire_bytes(&self) -> usize {
        self.entries.values().map(|v| 8 + 4 * v.len()).sum()
    }
}

/// Decides whether an inference outcome qualifies for collection.
///
/// * `hit_score` — `Some(D_j)` for hits, `None` for misses.
/// * `miss_margin` — `Some(prob₁ − prob₂)` for misses.
pub fn absorb_rule(
    hit_score: Option<f32>,
    miss_margin: Option<f32>,
    gamma: f32,
    delta: f32,
) -> Option<AbsorbRule> {
    match (hit_score, miss_margin) {
        (Some(d), _) if d > gamma => Some(AbsorbRule::Reinforce),
        (Some(_), _) => None,
        (None, Some(m)) if m > delta => Some(AbsorbRule::Expand),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coca_math::{cosine, l2_norm};

    #[test]
    fn absorb_keeps_unit_norm() {
        let mut u = UpdateTable::new();
        u.absorb(2, 5, &[3.0, 4.0], 0.95);
        let v = u.get(2, 5).unwrap();
        assert!((l2_norm(v) - 1.0).abs() < 1e-5);
        u.absorb(2, 5, &[0.0, 1.0], 0.95);
        assert!((l2_norm(u.get(2, 5).unwrap()) - 1.0).abs() < 1e-5);
        assert_eq!(u.len(), 1);
    }

    #[test]
    fn repeated_absorption_tracks_new_direction() {
        let mut u = UpdateTable::new();
        u.absorb(0, 0, &[1.0, 0.0], 0.95);
        // Stream of orthogonal vectors should pull the entry over.
        for _ in 0..200 {
            u.absorb(0, 0, &[0.0, 1.0], 0.95);
        }
        let v = u.get(0, 0).unwrap();
        assert!(cosine(v, &[0.0, 1.0]) > 0.99, "entry {v:?}");
    }

    #[test]
    fn beta_zero_means_last_sample_wins() {
        let mut u = UpdateTable::new();
        u.absorb(1, 1, &[1.0, 0.0], 0.0);
        u.absorb(1, 1, &[0.0, 2.0], 0.0);
        assert!(cosine(u.get(1, 1).unwrap(), &[0.0, 1.0]) > 0.999);
    }

    #[test]
    fn take_drains_for_upload() {
        let mut u = UpdateTable::new();
        u.absorb(0, 0, &[1.0, 0.0], 0.95);
        u.absorb(1, 3, &[0.0, 1.0], 0.95);
        assert_eq!(u.wire_bytes(), 2 * (8 + 8));
        let uploaded = u.take();
        assert_eq!(uploaded.len(), 2);
        assert!(u.is_empty());
        let cells: Vec<(usize, usize)> = uploaded.iter().map(|(c, l, _)| (c, l)).collect();
        assert!(cells.contains(&(0, 0)) && cells.contains(&(1, 3)));
    }

    #[test]
    fn serde_round_trips_populated_tables() {
        let mut u = UpdateTable::new();
        u.absorb(3, 7, &[1.0, 0.0], 0.95);
        u.absorb(0, 0, &[0.0, 1.0], 0.95);
        let json = serde_json::to_string(&u).expect("tuple keys must not leak into JSON");
        let back: UpdateTable = serde_json::from_str(&json).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back.get(3, 7).unwrap(), u.get(3, 7).unwrap());
    }

    #[test]
    fn rules_match_paper_conditions() {
        let (g, d) = (0.10, 0.25);
        // Hit above Γ → reinforce; at/below Γ → nothing (even with margin).
        assert_eq!(
            absorb_rule(Some(0.2), None, g, d),
            Some(AbsorbRule::Reinforce)
        );
        assert_eq!(absorb_rule(Some(0.05), Some(0.9), g, d), None);
        // Miss above Δ → expand; below → nothing.
        assert_eq!(absorb_rule(None, Some(0.3), g, d), Some(AbsorbRule::Expand));
        assert_eq!(absorb_rule(None, Some(0.2), g, d), None);
        assert_eq!(absorb_rule(None, None, g, d), None);
    }
}
