//! Hierarchical deterministic seed derivation.
//!
//! Every randomized component in the reproduction (feature generator, stream
//! generator, per-client noise, baseline tie-breaking …) draws its RNG from a
//! [`SeedTree`]. Child seeds are derived by mixing the parent seed with a
//! string label and an index through SplitMix64, so:
//!
//! * the same master seed always reproduces the same experiment, and
//! * adding a new consumer never perturbs the streams of existing ones
//!   (unlike handing out sequential draws from one shared RNG).

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// SplitMix64 finalizer — a cheap, well-dispersed 64-bit mixing function.
#[inline]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Mixes a byte string into a seed, one SplitMix64 round per 8-byte chunk.
fn mix_label(seed: u64, label: &str) -> u64 {
    let mut acc = splitmix64(seed ^ 0xA076_1D64_78BD_642F);
    for chunk in label.as_bytes().chunks(8) {
        let mut word = [0u8; 8];
        word[..chunk.len()].copy_from_slice(chunk);
        acc = splitmix64(acc ^ u64::from_le_bytes(word) ^ (chunk.len() as u64) << 56);
    }
    acc
}

/// A node in a deterministic seed-derivation tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedTree {
    seed: u64,
}

impl SeedTree {
    /// Root of a seed tree.
    pub fn new(master_seed: u64) -> Self {
        Self {
            seed: splitmix64(master_seed),
        }
    }

    /// The raw seed at this node.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives a labelled child node.
    pub fn child(&self, label: &str) -> SeedTree {
        SeedTree {
            seed: mix_label(self.seed, label),
        }
    }

    /// Derives an indexed child node (e.g. one per client or per class).
    pub fn child_idx(&self, label: &str, index: u64) -> SeedTree {
        SeedTree {
            seed: splitmix64(mix_label(self.seed, label) ^ splitmix64(index)),
        }
    }

    /// Materializes an RNG for this node.
    pub fn rng(&self) -> SmallRng {
        SmallRng::seed_from_u64(self.seed)
    }

    /// Shorthand for `child(label).rng()`.
    pub fn rng_for(&self, label: &str) -> SmallRng {
        self.child(label).rng()
    }

    /// Shorthand for `child_idx(label, index).rng()`.
    pub fn rng_for_idx(&self, label: &str, index: u64) -> SmallRng {
        self.child_idx(label, index).rng()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_path_same_stream() {
        let a = SeedTree::new(42).child("model").child_idx("client", 3);
        let b = SeedTree::new(42).child("model").child_idx("client", 3);
        let xs: Vec<u64> = a
            .rng()
            .sample_iter(rand::distributions::Standard)
            .take(8)
            .collect();
        let ys: Vec<u64> = b
            .rng()
            .sample_iter(rand::distributions::Standard)
            .take(8)
            .collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn different_labels_differ() {
        let root = SeedTree::new(42);
        assert_ne!(root.child("a").seed(), root.child("b").seed());
        assert_ne!(root.child_idx("c", 0).seed(), root.child_idx("c", 1).seed());
        // Label + index must not collide with a plain label.
        assert_ne!(root.child_idx("c", 0).seed(), root.child("c").seed());
    }

    #[test]
    fn different_master_seeds_differ() {
        assert_ne!(
            SeedTree::new(1).child("x").seed(),
            SeedTree::new(2).child("x").seed()
        );
    }

    #[test]
    fn label_prefixes_do_not_collide() {
        let root = SeedTree::new(7);
        // "ab" + "c" vs "abc" as single labels at different depths.
        assert_ne!(root.child("ab").child("c").seed(), root.child("abc").seed());
        // Zero-padded chunk vs shorter label.
        assert_ne!(root.child("x\0").seed(), root.child("x").seed());
    }
}
