//! Virtual timestamps and durations.
//!
//! All latencies in the reproduction are expressed in virtual time with
//! nanosecond resolution. Nanoseconds (as `u64`) keep arithmetic exact —
//! summing millions of sub-millisecond lookup costs in `f64` milliseconds
//! would accumulate rounding error and break determinism checks.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in virtual time, measured in nanoseconds since simulation start.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of virtual time, measured in nanoseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// Builds a timestamp from raw nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Builds a timestamp from milliseconds (fractional values are rounded
    /// to the nearest nanosecond).
    pub fn from_millis_f64(ms: f64) -> Self {
        SimTime(ms_to_nanos(ms))
    }

    /// Raw nanoseconds since the simulation epoch.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Milliseconds since the simulation epoch, as `f64`.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1.0e6
    }

    /// The duration elapsed since `earlier`, saturating at zero if `earlier`
    /// is in the future.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Builds a duration from raw nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Builds a duration from microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros * 1_000)
    }

    /// Builds a duration from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Builds a duration from fractional milliseconds (rounded to ns).
    ///
    /// Negative or non-finite inputs clamp to zero: cost models occasionally
    /// produce tiny negative values from calibration subtraction, and a
    /// virtual charge can never be negative.
    pub fn from_millis_f64(ms: f64) -> Self {
        SimDuration(ms_to_nanos(ms))
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1.0e6
    }

    /// True iff this is the zero duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// Scales the duration by a non-negative factor.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        SimDuration(ms_to_nanos(self.as_millis_f64() * factor))
    }
}

/// Converts fractional milliseconds to nanoseconds, clamping negatives and
/// non-finite values to zero.
fn ms_to_nanos(ms: f64) -> u64 {
    if !ms.is_finite() || ms <= 0.0 {
        return 0;
    }
    (ms * 1.0e6).round() as u64
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// Panics in debug builds if `rhs` is later than `self`.
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "SimTime subtraction went negative");
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "SimDuration subtraction went negative");
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn millis_round_trip() {
        let d = SimDuration::from_millis_f64(40.58);
        assert!((d.as_millis_f64() - 40.58).abs() < 1e-9);
    }

    #[test]
    fn negative_and_nan_millis_clamp_to_zero() {
        assert_eq!(SimDuration::from_millis_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_millis_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(
            SimDuration::from_millis_f64(f64::NEG_INFINITY),
            SimDuration::ZERO
        );
    }

    #[test]
    fn time_arithmetic() {
        let t0 = SimTime::ZERO;
        let t1 = t0 + SimDuration::from_millis(5);
        let t2 = t1 + SimDuration::from_micros(250);
        assert_eq!((t2 - t0).as_nanos(), 5_250_000);
        assert_eq!(t2.saturating_since(t0), t2 - t0);
        assert_eq!(t0.saturating_since(t2), SimDuration::ZERO);
    }

    #[test]
    fn duration_sum_and_scale() {
        let parts = [
            SimDuration::from_millis(1),
            SimDuration::from_micros(500),
            SimDuration::from_micros(500),
        ];
        let total: SimDuration = parts.iter().copied().sum();
        assert_eq!(total, SimDuration::from_millis(2));
        assert_eq!(total.mul_f64(2.5), SimDuration::from_millis(5));
        assert_eq!(total * 3, SimDuration::from_millis(6));
        assert_eq!(total / 2, SimDuration::from_millis(1));
    }

    #[test]
    fn ordering_is_by_instant() {
        let a = SimTime::from_millis_f64(1.0);
        let b = SimTime::from_millis_f64(2.0);
        assert!(a < b);
        assert_eq!(a.max(b), b);
    }
}
