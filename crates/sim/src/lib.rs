//! # coca-sim — virtual-time simulation kernel
//!
//! The CoCa paper measures wall-clock latency on an NVIDIA Jetson TX2
//! testbed. This reproduction replaces the testbed with a *deterministic
//! virtual clock*: every model block, cache lookup and network transfer is
//! charged a calibrated amount of **virtual time**, so experiments are exact,
//! repeatable and independent of the host machine.
//!
//! The crate provides three small, orthogonal pieces:
//!
//! * [`time`] — [`SimTime`](time::SimTime) / [`SimDuration`](time::SimDuration),
//!   nanosecond-resolution virtual timestamps with ms-oriented helpers.
//! * [`clock`] — [`VirtualClock`](clock::VirtualClock), a monotonically
//!   advancing cursor over virtual time.
//! * [`rng`] — [`SeedTree`](rng::SeedTree), hierarchical deterministic seed
//!   derivation so every component gets an independent, reproducible RNG.
//! * [`event`] — [`EventQueue`](event::EventQueue), the discrete-event
//!   scheduler used by the multi-client engine (server queueing, staggered
//!   client rounds): a hierarchical timer wheel with O(1) amortized
//!   operations at fleet scale, property-pinned to the reference
//!   [`HeapEventQueue`](event::HeapEventQueue)'s pop order.

pub mod clock;
pub mod event;
pub mod rng;
pub mod time;

pub use clock::VirtualClock;
pub use event::{EventQueue, HeapEventQueue, ScheduledEvent};
pub use rng::SeedTree;
pub use time::{SimDuration, SimTime};
