//! A minimal discrete-event queue.
//!
//! The multi-client engine uses this to interleave client rounds and server
//! request processing in virtual time: clients schedule "request arrives at
//! server" events, the server schedules "response arrives at client" events,
//! and the queue pops them in timestamp order. Ties break by insertion
//! sequence, which keeps runs deterministic.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event of payload type `E` scheduled at a virtual instant.
#[derive(Debug, Clone)]
pub struct ScheduledEvent<E> {
    /// When the event fires.
    pub at: SimTime,
    /// Monotone sequence number used to break timestamp ties (FIFO).
    pub seq: u64,
    /// The payload.
    pub payload: E,
}

impl<E> PartialEq for ScheduledEvent<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for ScheduledEvent<E> {}

impl<E> PartialOrd for ScheduledEvent<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for ScheduledEvent<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic min-queue of timestamped events.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<ScheduledEvent<E>>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `payload` to fire at instant `at`.
    pub fn schedule(&mut self, at: SimTime, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(ScheduledEvent { at, seq, payload });
    }

    /// Pops the earliest event, if any.
    pub fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        self.heap.pop()
    }

    /// Timestamp of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True iff no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        let t = |ms| SimTime::from_millis_f64(ms);
        q.schedule(t(5.0), "c");
        q.schedule(t(1.0), "a");
        q.schedule(t(3.0), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis_f64(2.0);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_reports_earliest() {
        let mut q = EventQueue::new();
        assert!(q.peek_time().is_none());
        assert!(q.is_empty());
        q.schedule(SimTime::ZERO + SimDuration::from_millis(9), ());
        q.schedule(SimTime::ZERO + SimDuration::from_millis(4), ());
        assert_eq!(q.peek_time().unwrap().as_millis_f64(), 4.0);
        assert_eq!(q.len(), 2);
    }
}
