//! Deterministic discrete-event scheduling.
//!
//! The multi-client engine uses this to interleave client rounds and server
//! request processing in virtual time: clients schedule "request arrives at
//! server" events, the server schedules "response arrives at client" events,
//! and the queue pops them in timestamp order. Ties break by insertion
//! sequence, which keeps runs deterministic.
//!
//! Two implementations share one API and one pop order:
//!
//! * [`EventQueue`] — a hierarchical timer wheel (the default). Insertion
//!   and pop are O(1) amortized, independent of how many events are
//!   pending, which is what a 10⁵–10⁶-member fleet needs: a binary heap's
//!   `log n` comparisons per operation (each touching a cache line of a
//!   multi-megabyte heap array) dominate the event loop at that scale.
//! * [`HeapEventQueue`] — the original `BinaryHeap` min-queue, kept as the
//!   *reference implementation*: a property test pins the wheel to pop in
//!   exactly the heap's (timestamp, insertion-seq) order, so every
//!   committed record regenerates byte-identically under either scheduler.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event of payload type `E` scheduled at a virtual instant.
#[derive(Debug, Clone)]
pub struct ScheduledEvent<E> {
    /// When the event fires.
    pub at: SimTime,
    /// Monotone sequence number used to break timestamp ties (FIFO).
    pub seq: u64,
    /// The payload.
    pub payload: E,
}

impl<E> PartialEq for ScheduledEvent<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for ScheduledEvent<E> {}

impl<E> PartialOrd for ScheduledEvent<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for ScheduledEvent<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Bits per wheel level: 64 slots each.
const LEVEL_BITS: u32 = 6;
/// Slots per level.
const SLOTS: usize = 1 << LEVEL_BITS;
/// Number of levels. Six levels cover `64^6 = 2^36` ticks from the cursor.
const LEVELS: usize = 6;
/// Nanoseconds per tick (as a shift): 2^16 ns ≈ 65.5 µs. Sub-tick ordering
/// is restored when a slot is drained (events sort by exact `(at, seq)`),
/// so tick granularity affects bucketing only, never pop order. The wheel
/// horizon is `2^(36+16) = 2^52` ns ≈ 52 virtual days; events beyond it
/// wait in an overflow heap and re-enter the wheel as the cursor advances.
const TICK_SHIFT: u32 = 16;

#[inline]
fn tick_of(at: SimTime) -> u64 {
    at.as_nanos() >> TICK_SHIFT
}

/// A deterministic min-queue of timestamped events: a hierarchical timer
/// wheel with an overflow heap, popping in exact `(at, seq)` order.
///
/// Level `l` buckets events whose tick differs from the cursor in bit
/// range `[6l, 6(l+1))`; advancing the cursor onto a higher-level slot
/// re-buckets ("cascades") its events into strictly lower levels, and a
/// level-0 slot holds exactly one tick, so a drain only has to order the
/// slot's own (usually tiny) burst. A sorted `ready` buffer absorbs both
/// drained slots and events scheduled at instants the cursor has already
/// passed (the engine regularly schedules at *now*).
#[derive(Debug)]
pub struct EventQueue<E> {
    /// Absolute tick the wheel currently stands on. Invariants: every
    /// event in `ready` has tick < `cursor`; every event in a wheel slot
    /// has tick ≥ `cursor`; the cursor never passes an occupied slot.
    cursor: u64,
    /// `LEVELS × SLOTS` buckets, level-major.
    slots: Vec<Vec<ScheduledEvent<E>>>,
    /// Per-level occupancy bitmap (bit `s` ⇔ slot `s` non-empty).
    occupied: [u64; LEVELS],
    /// Already-due events, sorted *descending* by `(at, seq)` — pop takes
    /// from the end, insertion is a binary search (rare and short: only
    /// past-scheduled events land here between drains).
    ready: Vec<ScheduledEvent<E>>,
    /// Events beyond the wheel horizon, min-first (inverted `Ord`).
    overflow: BinaryHeap<ScheduledEvent<E>>,
    len: usize,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        Self {
            cursor: 0,
            slots: (0..LEVELS * SLOTS).map(|_| Vec::new()).collect(),
            occupied: [0; LEVELS],
            ready: Vec::new(),
            overflow: BinaryHeap::new(),
            len: 0,
            next_seq: 0,
        }
    }

    /// Schedules `payload` to fire at instant `at`.
    pub fn schedule(&mut self, at: SimTime, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.len += 1;
        self.place(ScheduledEvent { at, seq, payload });
    }

    /// Pops the earliest event, if any.
    pub fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        if self.len == 0 {
            return None;
        }
        if self.ready.is_empty() {
            self.settle();
        }
        let ev = self.ready.pop();
        debug_assert!(ev.is_some(), "settle must surface a due event");
        self.len -= ev.is_some() as usize;
        ev
    }

    /// Timestamp of the earliest pending event. Takes `&mut self` because
    /// surfacing the next event may advance the wheel cursor (which never
    /// changes *what* pops next, only where it is buffered).
    pub fn peek_time(&mut self) -> Option<SimTime> {
        if self.len == 0 {
            return None;
        }
        if self.ready.is_empty() {
            self.settle();
        }
        self.ready.last().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True iff no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Routes an event to `ready`, a wheel slot, or the overflow heap,
    /// depending on where its tick falls relative to the cursor.
    fn place(&mut self, ev: ScheduledEvent<E>) {
        let tick = tick_of(ev.at);
        if tick < self.cursor {
            let pos = self
                .ready
                .partition_point(|e| (e.at, e.seq) > (ev.at, ev.seq));
            self.ready.insert(pos, ev);
            return;
        }
        let dist = tick ^ self.cursor;
        let level = if dist == 0 {
            0
        } else {
            ((63 - dist.leading_zeros()) / LEVEL_BITS) as usize
        };
        if level >= LEVELS {
            self.overflow.push(ev);
            return;
        }
        let slot = ((tick >> (LEVEL_BITS * level as u32)) & (SLOTS as u64 - 1)) as usize;
        self.slots[level * SLOTS + slot].push(ev);
        self.occupied[level] |= 1u64 << slot;
    }

    /// The next occupied wheel slot as `(level, slot, start_tick)`, where
    /// `start_tick` is the earliest tick the slot can contain. Occupied
    /// slots at distinct levels have strictly increasing starts, so the
    /// scan keeps the minimum (preferring higher levels on a defensive
    /// tie, so a cascade can never strand an equal-tick event above a
    /// drained level-0 slot).
    fn next_expiry(&self) -> Option<(usize, usize, u64)> {
        let mut best: Option<(usize, usize, u64)> = None;
        for level in 0..LEVELS {
            let occ = self.occupied[level];
            if occ == 0 {
                continue;
            }
            let shift = LEVEL_BITS * level as u32;
            let cs = (self.cursor >> shift) & (SLOTS as u64 - 1);
            // Slots behind the cursor's position are always empty at this
            // level (the cursor never passes an occupied slot).
            let pending = occ & !((1u64 << cs) - 1);
            debug_assert_ne!(pending, 0, "occupied slot behind the wheel cursor");
            let slot = pending.trailing_zeros() as usize;
            let span = 1u64 << (shift + LEVEL_BITS);
            let start = (self.cursor & !(span - 1)) | ((slot as u64) << shift);
            match best {
                Some((_, _, s)) if s < start => {}
                _ => best = Some((level, slot, start)),
            }
        }
        best
    }

    /// Advances the wheel until `ready` holds the earliest pending burst.
    /// Only called with `ready` empty and `len > 0`: drains the earliest
    /// level-0 slot (one exact tick) into `ready` in `(at, seq)` order,
    /// cascading higher-level slots and promoting due overflow events on
    /// the way.
    fn settle(&mut self) {
        debug_assert!(self.ready.is_empty());
        loop {
            let wheel = self.next_expiry();
            let over = self.overflow.peek().map(|e| tick_of(e.at));
            let (level, slot, start) = match (wheel, over) {
                (None, None) => {
                    debug_assert_eq!(self.len, 0, "events pending but nowhere to be found");
                    return;
                }
                (None, Some(tick)) => {
                    // Wheel empty: jump the cursor to the overflow front so
                    // it re-enters at level 0 (nothing can mis-level).
                    let ev = self.overflow.pop().expect("peeked overflow event");
                    self.cursor = self.cursor.max(tick);
                    self.place(ev);
                    continue;
                }
                (Some(w), over) => {
                    if over.is_some_and(|t| t <= w.2) {
                        // The overflow front is due before (or exactly at)
                        // the next slot: re-enter it first so an equal-tick
                        // event keeps its seq position within the burst.
                        let ev = self.overflow.pop().expect("peeked overflow event");
                        self.place(ev);
                        continue;
                    }
                    w
                }
            };
            let bucket = level * SLOTS + slot;
            let mut drained = std::mem::take(&mut self.slots[bucket]);
            self.occupied[level] &= !(1u64 << slot);
            if level == 0 {
                // A level-0 slot holds exactly one tick; order the burst
                // by seq and expose it (descending — pop takes the end).
                debug_assert!(drained.iter().all(|e| tick_of(e.at) == start));
                drained.sort_unstable_by_key(|e| std::cmp::Reverse((e.at, e.seq)));
                self.cursor = start + 1;
                // Keep the slot's allocation by swapping the (empty)
                // ready buffer into it.
                std::mem::swap(&mut self.ready, &mut drained);
                self.slots[bucket] = drained;
                return;
            }
            // Cascade: advancing onto the slot start re-buckets every
            // event into a strictly lower level (their ticks now agree
            // with the cursor on this level's bit range).
            self.cursor = start;
            for ev in drained.drain(..) {
                self.place(ev);
            }
            self.slots[bucket] = drained;
        }
    }
}

/// The original `BinaryHeap`-backed min-queue. Kept as the reference
/// implementation the timer wheel is property-tested against; same API,
/// same (timestamp, insertion-seq) pop order.
#[derive(Debug)]
pub struct HeapEventQueue<E> {
    heap: BinaryHeap<ScheduledEvent<E>>,
    next_seq: u64,
}

impl<E> Default for HeapEventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> HeapEventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `payload` to fire at instant `at`.
    pub fn schedule(&mut self, at: SimTime, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(ScheduledEvent { at, seq, payload });
    }

    /// Pops the earliest event, if any.
    pub fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        self.heap.pop()
    }

    /// Timestamp of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True iff no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        let t = |ms| SimTime::from_millis_f64(ms);
        q.schedule(t(5.0), "c");
        q.schedule(t(1.0), "a");
        q.schedule(t(3.0), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis_f64(2.0);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_reports_earliest() {
        let mut q = EventQueue::new();
        assert!(q.peek_time().is_none());
        assert!(q.is_empty());
        q.schedule(SimTime::ZERO + SimDuration::from_millis(9), ());
        q.schedule(SimTime::ZERO + SimDuration::from_millis(4), ());
        assert_eq!(q.peek_time().unwrap().as_millis_f64(), 4.0);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn schedules_in_the_past_pop_first() {
        let mut q = EventQueue::new();
        let t = |ms: u64| SimTime::ZERO + SimDuration::from_millis(ms);
        q.schedule(t(10), "later");
        assert_eq!(q.pop().unwrap().payload, "later");
        // The cursor now stands past t=10; schedule earlier instants.
        q.schedule(t(5), "past-b");
        q.schedule(t(1), "past-a");
        q.schedule(t(20), "future");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, vec!["past-a", "past-b", "future"]);
    }

    #[test]
    fn far_future_events_round_trip_the_overflow_heap() {
        let mut q = EventQueue::new();
        // ~115 virtual days — beyond the 2^52 ns wheel horizon.
        let far = SimTime::from_nanos(1u64 << 53);
        q.schedule(far, "far-b");
        q.schedule(SimTime::from_nanos(7), "near");
        q.schedule(far, "far-c");
        q.schedule(far + SimDuration::from_nanos(1), "far-d");
        assert_eq!(q.pop().unwrap().payload, "near");
        assert_eq!(q.pop().unwrap().payload, "far-b");
        assert_eq!(q.pop().unwrap().payload, "far-c");
        assert_eq!(q.pop().unwrap().payload, "far-d");
        assert!(q.pop().is_none());
    }

    #[test]
    fn interleaved_schedule_and_pop_matches_heap_reference() {
        // A deterministic miniature of the proptest in
        // tests/proptest_event_queue.rs, kept here as a fast unit check.
        let mut wheel = EventQueue::new();
        let mut heap = HeapEventQueue::new();
        let mut state = 0x5EEDu64;
        let mut step = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        for i in 0..5_000u64 {
            // Mix sub-tick offsets, same-instant bursts and far horizons.
            let at = SimTime::from_nanos(match i % 5 {
                0 => step() % 1_000,
                1 => (step() % 64) * 65_536,
                2 => step() % (1 << 40),
                3 => 1 << 53,
                _ => step() % (1 << 22),
            });
            wheel.schedule(at, i);
            heap.schedule(at, i);
            if i % 3 == 0 {
                let (a, b) = (wheel.pop(), heap.pop());
                assert_eq!(a.is_some(), b.is_some());
                if let (Some(a), Some(b)) = (a, b) {
                    assert_eq!((a.at, a.seq, a.payload), (b.at, b.seq, b.payload));
                }
            }
        }
        assert_eq!(wheel.len(), heap.len());
        while let Some(b) = heap.pop() {
            let a = wheel.pop().expect("wheel drained early");
            assert_eq!((a.at, a.seq, a.payload), (b.at, b.seq, b.payload));
        }
        assert!(wheel.pop().is_none());
    }
}
