//! A monotonically advancing virtual clock.

use crate::time::{SimDuration, SimTime};

/// A cursor over virtual time.
///
/// Components that execute sequentially on one simulated device (a client
/// performing inference, the server draining its request queue) share a
/// `VirtualClock` and advance it by the calibrated cost of each operation.
///
/// The clock is deliberately *not* shared across simulated devices — each
/// device owns its own clock, and cross-device interactions (messages) are
/// resolved by the discrete-event queue in [`crate::event`].
#[derive(Debug, Clone, Default)]
pub struct VirtualClock {
    now: SimTime,
}

impl VirtualClock {
    /// A clock starting at the simulation epoch.
    pub fn new() -> Self {
        Self { now: SimTime::ZERO }
    }

    /// A clock starting at an arbitrary instant (used when a device joins an
    /// already-running simulation).
    pub fn starting_at(now: SimTime) -> Self {
        Self { now }
    }

    /// Current virtual instant.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Advances the clock by `d` and returns the new instant.
    pub fn advance(&mut self, d: SimDuration) -> SimTime {
        self.now += d;
        self.now
    }

    /// Moves the clock forward to `t` if `t` is in the future; a device that
    /// waits for a message cannot travel back in time, so earlier instants
    /// leave the clock untouched.
    pub fn advance_to(&mut self, t: SimTime) -> SimTime {
        if t > self.now {
            self.now = t;
        }
        self.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advances_monotonically() {
        let mut c = VirtualClock::new();
        assert_eq!(c.now(), SimTime::ZERO);
        c.advance(SimDuration::from_millis(3));
        assert_eq!(c.now().as_millis_f64(), 3.0);
        c.advance_to(SimTime::from_millis_f64(2.0)); // no-op: in the past
        assert_eq!(c.now().as_millis_f64(), 3.0);
        c.advance_to(SimTime::from_millis_f64(10.0));
        assert_eq!(c.now().as_millis_f64(), 10.0);
    }

    #[test]
    fn starting_at_offsets_epoch() {
        let mut c = VirtualClock::starting_at(SimTime::from_millis_f64(100.0));
        c.advance(SimDuration::from_millis(1));
        assert_eq!(c.now().as_millis_f64(), 101.0);
    }
}
