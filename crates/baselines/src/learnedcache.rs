//! LearnedCache-style multi-exit inference (§VI.B).
//!
//! Balasubramanian et al., 2021: "uses multiple exits and learned models to
//! emulate caching operations, allowing early termination of inference
//! upon prediction of cache hits" and "attempts to adapt to the data
//! distribution characteristics of clients through frequent retraining".
//!
//! The reproduction implements the exits as nearest-centroid probes over
//! the exit layer's pooled features, trained on a buffer of recent
//! *self-labelled* samples (labels come from the full model — the exact
//! self-distillation loop learned caches use). Retraining runs every
//! `retrain_frames` frames and its compute is charged to the client,
//! reproducing the paper's criticism: retraining overhead degrades QoS,
//! and rare classes never accumulate enough buffer samples for a usable
//! exit predictor — the long-tail weakness.
//!
//! As a [`MethodDriver`] the method is degenerate on the network (exits
//! and retraining are all on-device); it rides the shared event loop so
//! its latencies face the same virtual clock as every other method.

use std::collections::VecDeque;

use coca_core::driver::{
    drive, drive_plan, DriveConfig, DrivePlan, FrameOutcome, FrameStep, MethodDriver, NoMsg,
};
use coca_core::engine::Scenario;
use coca_data::Frame;
use coca_math::{ScoreScratch, VectorStore};
use coca_model::ClientFeatureView;
use coca_sim::SimDuration;
use serde::{Deserialize, Serialize};

use crate::report::MethodReport;

/// LearnedCache driver configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct LearnedCacheConfig {
    /// Number of exits, spread evenly over the preset cache points.
    pub num_exits: usize,
    /// Exit fires when the relative margin between the two best centroid
    /// similarities exceeds this threshold (same scale as CoCa's Θ).
    pub exit_threshold: f32,
    /// Per-exit training buffer capacity (samples).
    pub buffer_capacity: usize,
    /// Retraining period in frames.
    pub retrain_frames: usize,
    /// Retraining compute charged per buffered sample per exit (ms) —
    /// lightweight probe fitting on the device.
    pub retrain_ms_per_sample: f64,
    /// Minimum buffered samples before a class gets a centroid.
    pub min_samples_per_class: usize,
}

impl LearnedCacheConfig {
    /// Defaults matched to a CoCa configuration (same Θ scale and round
    /// length, so comparisons isolate the mechanism).
    pub fn for_model(theta: f32, round_frames: usize) -> Self {
        Self {
            num_exits: 5,
            exit_threshold: theta,
            buffer_capacity: 600,
            retrain_frames: round_frames,
            retrain_ms_per_sample: 0.05,
            min_samples_per_class: 3,
        }
    }
}

/// One exit's learned predictor: per-class centroids in a contiguous
/// [`VectorStore`] (classes with too few buffered samples have no row).
struct ExitProbe {
    point: usize,
    num_classes: usize,
    /// Classes with a trained centroid, ascending, parallel to the rows
    /// of `centroids`.
    classes: Vec<usize>,
    centroids: VectorStore,
    /// Training buffer: (feature, label).
    buffer: VecDeque<(Vec<f32>, usize)>,
}

impl ExitProbe {
    fn new(point: usize, classes: usize) -> Self {
        Self {
            point,
            num_classes: classes,
            classes: Vec::new(),
            centroids: VectorStore::empty(),
            buffer: VecDeque::new(),
        }
    }

    fn push_sample(&mut self, feature: Vec<f32>, label: usize, capacity: usize) {
        if self.buffer.len() >= capacity {
            self.buffer.pop_front();
        }
        self.buffer.push_back((feature, label));
    }

    /// Rebuilds centroids from the buffer; returns the number of samples
    /// processed (the retraining cost driver).
    fn retrain(&mut self, dim: usize, min_samples: usize) -> usize {
        let mut sums = vec![vec![0.0f32; dim]; self.num_classes];
        let mut counts = vec![0usize; self.num_classes];
        for (f, label) in &self.buffer {
            coca_math::vector::axpy(1.0, f, &mut sums[*label]);
            counts[*label] += 1;
        }
        self.classes.clear();
        self.centroids = VectorStore::new(dim);
        for (c, (mut sum, count)) in sums.into_iter().zip(counts).enumerate() {
            if count >= min_samples {
                coca_math::vector::l2_normalize(&mut sum);
                self.classes.push(c);
                self.centroids.push_row(&sum);
            }
        }
        self.buffer.len()
    }

    /// Exit decision: `Some(class)` when the relative margin between the
    /// two best centroid matches exceeds the threshold. One fused
    /// `score_top2` pass (α = 0: no cross-exit accumulation).
    fn predict(
        &self,
        v: &[f32],
        threshold: f32,
        scratch: &mut ScoreScratch,
    ) -> (Option<usize>, usize) {
        let present = self.classes.len();
        if present == 0 {
            return (None, 0);
        }
        scratch.begin(self.num_classes);
        let top2 = self.centroids.score_top2(v, &self.classes, 0.0, scratch);
        if let (Some((class, b)), Some((_, s))) = (top2.best, top2.second) {
            if s > 1e-3 && (b - s) / s > threshold {
                return (Some(class), present);
            }
        }
        (None, present)
    }
}

/// One LearnedCache client: its exit probes plus retraining bookkeeping.
struct LearnedClient {
    probes: Vec<ExitProbe>,
    view: ClientFeatureView,
    scratch: ScoreScratch,
    since_retrain: usize,
    pending_retrain_ms: f64,
}

/// The LearnedCache method driver.
pub struct LearnedCacheDriver<'s> {
    scenario: &'s Scenario,
    cfg: LearnedCacheConfig,
    clients: Vec<LearnedClient>,
}

impl<'s> LearnedCacheDriver<'s> {
    /// Builds the driver over a scenario.
    pub fn new(scenario: &'s Scenario, cfg: LearnedCacheConfig) -> Self {
        let rt = &scenario.rt;
        let l = rt.num_cache_points();
        let classes = rt.num_classes();
        // Exits spread evenly, skipping the very first point (too little
        // compute saved to matter for a learned gate).
        let exits: Vec<usize> = (1..=cfg.num_exits)
            .map(|e| ((e * l) / (cfg.num_exits + 1)).min(l - 1))
            .collect();
        let clients = (0..scenario.profiles.len())
            .map(|_| LearnedClient {
                probes: exits.iter().map(|&p| ExitProbe::new(p, classes)).collect(),
                view: ClientFeatureView::new(),
                scratch: ScoreScratch::new(),
                since_retrain: 0,
                pending_retrain_ms: 0.0,
            })
            .collect();
        Self {
            scenario,
            cfg,
            clients,
        }
    }
}

impl MethodDriver for LearnedCacheDriver<'_> {
    type Request = NoMsg;
    type Alloc = NoMsg;
    type Query = NoMsg;
    type Reply = NoMsg;
    type Upload = NoMsg;

    fn name(&self) -> &str {
        "LearnedCache"
    }

    fn process_frame(&mut self, k: usize, frame: &Frame) -> FrameStep<NoMsg> {
        let rt = &self.scenario.rt;
        let cfg = &self.cfg;
        let profile = &self.scenario.profiles[k];
        let client = &mut self.clients[k];
        let mut time = SimDuration::ZERO;
        // Amortize any retraining burst onto the following frame (the
        // device is busy; the next inference waits).
        if client.pending_retrain_ms > 0.0 {
            time += SimDuration::from_millis_f64(client.pending_retrain_ms);
            client.pending_retrain_ms = 0.0;
        }

        let mut outcome: Option<(usize, usize)> = None; // (class, point)
        for probe in &client.probes {
            let v = rt.semantic_vector(frame, profile, probe.point, &mut client.view);
            let (pred, present) = probe.predict(&v, cfg.exit_threshold, &mut client.scratch);
            time += rt.lookup_cost(probe.point, present);
            if let Some(class) = pred {
                outcome = Some((class, probe.point));
                break;
            }
        }

        let (predicted, hit_point) = match outcome {
            Some((class, point)) => {
                time += rt.compute_to_point(point);
                (class, Some(point))
            }
            None => {
                // Full inference; label feeds every exit buffer.
                let p = rt.classify(frame, profile, &mut client.view);
                time += rt.full_compute();
                for probe in client.probes.iter_mut() {
                    let v = rt.semantic_vector(frame, profile, probe.point, &mut client.view);
                    probe.push_sample(v, p.class, cfg.buffer_capacity);
                }
                (p.class, None)
            }
        };

        client.since_retrain += 1;
        if client.since_retrain >= cfg.retrain_frames {
            client.since_retrain = 0;
            let mut samples = 0usize;
            for probe in client.probes.iter_mut() {
                let dim = rt.feature_dim(probe.point);
                samples += probe.retrain(dim, cfg.min_samples_per_class);
            }
            client.pending_retrain_ms = samples as f64 * cfg.retrain_ms_per_sample;
        }

        FrameStep::Done(FrameOutcome {
            compute: time,
            correct: predicted == frame.class,
            hit_point,
        })
    }
}

/// Runs LearnedCache over the scenario through the generic engine.
pub fn run_learnedcache(
    scenario: &Scenario,
    cfg: &LearnedCacheConfig,
    rounds: usize,
    frames_per_round: usize,
) -> MethodReport {
    run_learnedcache_with(scenario, cfg, &DriveConfig::new(rounds, frames_per_round))
}

/// Runs LearnedCache under explicit engine knobs — pass the *same*
/// [`DriveConfig`] to every method of a comparison so all rows price
/// identical network and boot conditions.
pub fn run_learnedcache_with(
    scenario: &Scenario,
    cfg: &LearnedCacheConfig,
    drive_cfg: &DriveConfig,
) -> MethodReport {
    let mut driver = LearnedCacheDriver::new(scenario, *cfg);
    let report = drive(scenario, &mut driver, drive_cfg);
    MethodReport::from_engine("LearnedCache", report)
}

/// Runs LearnedCache under an explicit [`DrivePlan`] — the
/// dynamic-scenario entry point. Exits and retraining are all on-device,
/// so churn needs no shared-state handling; a joiner simply starts with
/// empty training buffers.
pub fn run_learnedcache_plan(
    scenario: &Scenario,
    cfg: &LearnedCacheConfig,
    plan: &DrivePlan,
) -> MethodReport {
    let mut driver = LearnedCacheDriver::new(scenario, *cfg);
    let report = drive_plan(scenario, &mut driver, plan);
    MethodReport::from_engine("LearnedCache", report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use coca_core::engine::{Scenario, ScenarioConfig};
    use coca_data::DatasetSpec;
    use coca_model::ModelId;

    fn scenario(seed: u64) -> Scenario {
        let mut cfg = ScenarioConfig::new(ModelId::ResNet101, DatasetSpec::ucf101().subset(20));
        cfg.num_clients = 2;
        cfg.seed = seed;
        Scenario::build(cfg)
    }

    #[test]
    fn probe_learns_centroids_and_exits() {
        let mut probe = ExitProbe::new(0, 3);
        // Feed clean one-hot-ish samples for classes 0 and 1 only.
        for i in 0..20 {
            probe.push_sample(vec![1.0, 0.1 * (i % 3) as f32, 0.2], 0, 100);
            probe.push_sample(vec![0.3, 0.1 * (i % 3) as f32, 1.0], 1, 100);
        }
        let n = probe.retrain(3, 3);
        assert_eq!(n, 40);
        assert_eq!(
            probe.classes,
            vec![0, 1],
            "unseen class must have no centroid"
        );
        assert_eq!(probe.centroids.rows(), 2);
        let mut scratch = ScoreScratch::new();
        let (pred, present) = probe.predict(&[1.0, 0.0, 0.0], 0.05, &mut scratch);
        assert_eq!(pred, Some(0));
        assert_eq!(present, 2);
    }

    #[test]
    fn learnedcache_exits_after_warmup() {
        let s = scenario(95);
        let full = s.rt.full_compute().as_millis_f64();
        let cfg = LearnedCacheConfig::for_model(0.012, 150);
        let r = run_learnedcache(&s, &cfg, 4, 150);
        assert_eq!(r.frames, 2 * 4 * 150);
        assert!(r.hit_ratio > 0.1, "hit ratio {}", r.hit_ratio);
        assert!(r.mean_latency_ms < full, "{} vs {full}", r.mean_latency_ms);
    }

    #[test]
    fn learnedcache_is_deterministic() {
        let cfg = LearnedCacheConfig::for_model(0.012, 100);
        let a = run_learnedcache(&scenario(96), &cfg, 2, 100);
        let b = run_learnedcache(&scenario(96), &cfg, 2, 100);
        assert_eq!(a.mean_latency_ms, b.mean_latency_ms);
        assert_eq!(a.frame_digest, b.frame_digest);
    }
}
