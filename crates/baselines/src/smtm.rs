//! SMTM-style single-client semantic caching (§II.2, §VI.B).
//!
//! Same class-based semantic matching machinery as CoCa (SMTM is where the
//! mechanism comes from), but strictly per-client:
//!
//! * **All preset cache layers are active** — SMTM has no layer-selection
//!   stage; this is exactly the lookup-overhead weakness the paper's §VI.E
//!   measurements expose.
//! * **Hot-spot classes are chosen locally** from the client's own
//!   frequency × recency score (the same 0.95-mass rule CoCa borrows from
//!   SMTM), with no global frequency information.
//! * **Centroids update locally** (same rule-1/rule-2 absorption as CoCa,
//!   same thresholds, but into a private table; no cross-client sharing,
//!   so non-IID feature drift is only ever corrected from the client's own
//!   samples).
//!
//! As a [`MethodDriver`] SMTM is degenerate on the network: no allocation
//! phase, no server queries, no uploads — everything resolves on-device.
//! Hot-spot refresh runs at the shared round boundary inside
//! [`MethodDriver::end_round`].

use coca_core::collect::{absorb_rule, AbsorbRule, UpdateTable};
use coca_core::driver::{
    drive, drive_plan, DriveConfig, DrivePlan, FrameOutcome, FrameStep, MethodDriver, NoMsg,
};
use coca_core::engine::Scenario;
use coca_core::global::GlobalCacheTable;
use coca_core::lookup::infer_with_cache;
use coca_core::semantic::LocalCache;
use coca_core::server::seed_global_table;
use coca_core::status::ClientStatus;
use coca_core::CocaConfig;
use coca_data::Frame;
use coca_model::ClientFeatureView;
use serde::{Deserialize, Serialize};

use crate::report::MethodReport;

/// SMTM driver configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SmtmConfig {
    /// Hit / collection thresholds (shared with CoCa for fairness).
    pub theta: f32,
    /// Rule-1 reinforcement threshold.
    pub gamma_collect: f32,
    /// Rule-2 expansion threshold.
    pub delta_collect: f32,
    /// Update-table decay β.
    pub beta: f32,
    /// Hot-spot selection period in frames (SMTM "frequently assesses the
    /// importance of each class"; reuse the round length).
    pub refresh_frames: usize,
    /// Hot-spot score mass.
    pub hotspot_mass: f64,
    /// Recency decay base.
    pub recency_base: f64,
    /// Whether centroids update from the client's own (self-labelled)
    /// stream. Defaults to false: under long self-labelled runs the local
    /// update loop can destabilize (wrong hits reinforce wrong centroids
    /// with no cross-client dilution); the stable configuration keeps the
    /// profiled centroids and only adapts the hot-spot set, which matches
    /// SMTM's published behaviour on stream data.
    pub local_updates: bool,
}

impl SmtmConfig {
    /// Derives SMTM settings from a CoCa configuration so comparisons
    /// share every threshold.
    pub fn from_coca(cfg: &CocaConfig) -> Self {
        Self {
            theta: cfg.theta,
            gamma_collect: cfg.gamma_collect,
            delta_collect: cfg.delta_collect,
            beta: cfg.beta,
            refresh_frames: cfg.round_frames,
            hotspot_mass: cfg.hotspot_mass,
            // SMTM weighs total frequency much more heavily than recency:
            // its hot set keeps every class that appears at all, which is
            // exactly why its lookups get expensive when many classes are
            // active (the paper's §VI.E critique of SMTM).
            recency_base: 0.85,
            local_updates: false,
        }
    }
}

/// One SMTM client: a private centroid table + local status.
struct SmtmClient {
    /// Private copy of the seeded centroid table, updated locally.
    table: GlobalCacheTable,
    status: ClientStatus,
    /// Cumulative (all-time) class frequencies for the importance score.
    total_freq: Vec<u64>,
    update: UpdateTable,
    cache: LocalCache,
    view: ClientFeatureView,
}

impl SmtmClient {
    fn refresh_cache(&mut self, cfg: &SmtmConfig) {
        // Local importance score: total frequency × recency decay, exactly
        // the structure SMTM describes (and CoCa's Eq. 10 inherits).
        let scores: Vec<f64> = self
            .total_freq
            .iter()
            .zip(self.status.timestamps())
            .map(|(&f, &tau)| {
                let staleness = (tau as f64 / cfg.refresh_frames as f64).floor();
                f as f64 * cfg.recency_base.powf(staleness)
            })
            .collect();
        let total: f64 = scores.iter().sum();
        let classes: Vec<usize> = if total <= 0.0 {
            (0..scores.len()).collect()
        } else {
            let mut order: Vec<usize> = (0..scores.len()).collect();
            order.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]).then(a.cmp(&b)));
            let mut acc = 0.0;
            let mut hot = Vec::new();
            for i in order {
                hot.push(i);
                acc += scores[i];
                if acc >= total * cfg.hotspot_mass {
                    break;
                }
            }
            hot
        };
        // All preset layers, hot classes only.
        let layers: Vec<usize> = (0..self.table.num_layers()).collect();
        self.cache = self.table.extract(&layers, &classes);
    }

    /// Merges this round's locally collected vectors into the private
    /// table. SMTM entries are running class centroids, so the new
    /// evidence blends into the existing center instead of replacing it —
    /// a single noisy round must not overwrite a stable centroid.
    fn apply_updates(&mut self) {
        const BLEND: f32 = 0.3;
        let collected = self.update.take();
        for (class, layer, v) in collected.iter() {
            match self.table.get(class, layer) {
                Some(old) => {
                    let mut merged = old.to_vec();
                    coca_math::vector::scale(1.0 - BLEND, &mut merged);
                    coca_math::vector::axpy(BLEND, v, &mut merged);
                    self.table.set(class, layer, merged);
                }
                None => self.table.set(class, layer, v.to_vec()),
            }
        }
    }
}

/// The SMTM method driver.
pub struct SmtmDriver<'s> {
    scenario: &'s Scenario,
    cfg: SmtmConfig,
    /// The lookup path reuses CoCa's Eq. 1/2 implementation via a
    /// CocaConfig carrying SMTM's thresholds.
    lookup_cfg: CocaConfig,
    clients: Vec<SmtmClient>,
    /// Pooled lookup buffer shared by all clients (frames are sequential).
    scratch: coca_core::LookupScratch,
}

impl<'s> SmtmDriver<'s> {
    /// Builds the driver over a scenario.
    pub fn new(scenario: &'s Scenario, cfg: SmtmConfig) -> Self {
        let rt = &scenario.rt;
        let mut lookup_cfg = CocaConfig::for_model(rt.arch().id);
        lookup_cfg.theta = cfg.theta;
        lookup_cfg.gamma_collect = cfg.gamma_collect;
        lookup_cfg.delta_collect = cfg.delta_collect;
        lookup_cfg.beta = cfg.beta;
        let clients: Vec<SmtmClient> = (0..scenario.profiles.len())
            .map(|_| {
                let mut c = SmtmClient {
                    table: seed_global_table(rt, scenario.seeds()),
                    status: ClientStatus::new(rt.num_classes()),
                    total_freq: vec![0; rt.num_classes()],
                    update: UpdateTable::new(),
                    cache: LocalCache::empty(),
                    view: ClientFeatureView::new(),
                };
                c.refresh_cache(&cfg);
                c
            })
            .collect();
        Self {
            scenario,
            cfg,
            lookup_cfg,
            clients,
            scratch: coca_core::LookupScratch::new(),
        }
    }
}

impl MethodDriver for SmtmDriver<'_> {
    type Request = NoMsg;
    type Alloc = NoMsg;
    type Query = NoMsg;
    type Reply = NoMsg;
    type Upload = NoMsg;

    fn name(&self) -> &str {
        "SMTM"
    }

    fn process_frame(&mut self, k: usize, frame: &Frame) -> FrameStep<NoMsg> {
        let rt = &self.scenario.rt;
        let cfg = &self.cfg;
        let client = &mut self.clients[k];
        let res = infer_with_cache(
            rt,
            &self.scenario.profiles[k],
            frame,
            &client.cache,
            &self.lookup_cfg,
            &mut client.view,
            &mut self.scratch,
        );
        client.status.observe(res.predicted);
        client.total_freq[res.predicted] += 1;

        let miss_margin = res.full_prediction.as_ref().map(|p| p.margin);
        let hit_score = res.hit_point.map(|_| res.hit_score);
        match absorb_rule(hit_score, miss_margin, cfg.gamma_collect, cfg.delta_collect) {
            Some(AbsorbRule::Reinforce) => {
                for (point, v) in &res.observed {
                    client.update.absorb(res.predicted, *point, v, cfg.beta);
                }
            }
            Some(AbsorbRule::Expand) => {
                for point in 0..rt.num_cache_points() {
                    let v = rt.semantic_vector(
                        frame,
                        &self.scenario.profiles[k],
                        point,
                        &mut client.view,
                    );
                    client.update.absorb(res.predicted, point, &v, cfg.beta);
                }
            }
            None => {}
        }
        FrameStep::Done(FrameOutcome {
            compute: res.latency,
            correct: res.correct,
            hit_point: res.hit_point,
        })
    }

    fn end_round(&mut self, k: usize) -> Option<NoMsg> {
        let client = &mut self.clients[k];
        if self.cfg.local_updates {
            client.apply_updates();
        } else {
            client.update.take();
        }
        client.refresh_cache(&self.cfg);
        client.status.reset_round();
        None
    }
}

/// Runs SMTM over the scenario through the generic engine.
pub fn run_smtm(
    scenario: &Scenario,
    cfg: &SmtmConfig,
    rounds: usize,
    frames_per_round: usize,
) -> MethodReport {
    run_smtm_with(scenario, cfg, &DriveConfig::new(rounds, frames_per_round))
}

/// Runs SMTM under explicit engine knobs — pass the *same*
/// [`DriveConfig`] to every method of a comparison so all rows price
/// identical network and boot conditions.
pub fn run_smtm_with(
    scenario: &Scenario,
    cfg: &SmtmConfig,
    drive_cfg: &DriveConfig,
) -> MethodReport {
    let mut driver = SmtmDriver::new(scenario, *cfg);
    let report = drive(scenario, &mut driver, drive_cfg);
    MethodReport::from_engine("SMTM", report)
}

/// Runs SMTM under an explicit [`DrivePlan`] — the dynamic-scenario entry
/// point. SMTM is strictly per-client, so churn needs no shared-state
/// handling: a joiner's private table is freshly seeded at boot, and a
/// leaver takes its table with it.
pub fn run_smtm_plan(scenario: &Scenario, cfg: &SmtmConfig, plan: &DrivePlan) -> MethodReport {
    let mut driver = SmtmDriver::new(scenario, *cfg);
    let report = drive_plan(scenario, &mut driver, plan);
    MethodReport::from_engine("SMTM", report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use coca_core::engine::ScenarioConfig;
    use coca_data::DatasetSpec;
    use coca_model::ModelId;

    fn scenario(seed: u64) -> Scenario {
        let mut cfg = ScenarioConfig::new(ModelId::ResNet101, DatasetSpec::ucf101().subset(20));
        cfg.num_clients = 2;
        cfg.seed = seed;
        Scenario::build(cfg)
    }

    #[test]
    fn smtm_beats_edge_only_on_latency() {
        let s = scenario(81);
        let full = s.rt.full_compute().as_millis_f64();
        let cfg = SmtmConfig::from_coca(&CocaConfig::for_model(ModelId::ResNet101));
        let r = run_smtm(&s, &cfg, 3, 150);
        assert_eq!(r.frames, 2 * 3 * 150);
        assert!(r.hit_ratio > 0.2, "hit ratio {}", r.hit_ratio);
        assert!(r.mean_latency_ms < full, "{} vs {full}", r.mean_latency_ms);
    }

    #[test]
    fn smtm_is_deterministic() {
        let cfg = SmtmConfig::from_coca(&CocaConfig::for_model(ModelId::ResNet101));
        let a = run_smtm(&scenario(82), &cfg, 2, 100);
        let b = run_smtm(&scenario(82), &cfg, 2, 100);
        assert_eq!(a.mean_latency_ms, b.mean_latency_ms);
        assert_eq!(a.accuracy_pct, b.accuracy_pct);
        assert_eq!(a.frame_digest, b.frame_digest);
    }
}
