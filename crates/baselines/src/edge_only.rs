//! Edge-Only: full-model inference on every frame (§VI.B).
//!
//! The reference point every acceleration method is measured against —
//! both for latency (no cache, no lookup overhead) and for accuracy (no
//! early-exit errors).

use coca_core::engine::Scenario;
use coca_metrics::recorder::{LatencyRecorder, RunSummary};
use coca_model::ClientFeatureView;

use crate::report::MethodReport;

/// Runs Edge-Only over `rounds × frames_per_round` frames per client.
pub fn run_edge_only(scenario: &Scenario, rounds: usize, frames_per_round: usize) -> MethodReport {
    let rt = &scenario.rt;
    let full = rt.full_compute();
    let mut latency = LatencyRecorder::new();
    let mut per_client = Vec::with_capacity(scenario.profiles.len());
    for (k, profile) in scenario.profiles.iter().enumerate() {
        let mut stream = scenario.stream(k);
        let mut view = ClientFeatureView::new();
        let mut summary = RunSummary::new(rt.num_cache_points());
        for _ in 0..rounds * frames_per_round {
            let frame = stream.next_frame();
            let p = rt.classify(&frame, profile, &mut view);
            summary.latency.record(full);
            summary.accuracy.record(p.correct);
            summary.hits.record_miss(p.correct);
            latency.record(full);
        }
        per_client.push(summary);
    }
    MethodReport::from_parts("Edge-Only", latency, per_client)
}

#[cfg(test)]
mod tests {
    use super::*;
    use coca_core::engine::ScenarioConfig;
    use coca_data::DatasetSpec;
    use coca_model::ModelId;

    #[test]
    fn edge_only_has_constant_latency_and_no_hits() {
        let mut cfg = ScenarioConfig::new(ModelId::ResNet101, DatasetSpec::ucf101().subset(20));
        cfg.num_clients = 2;
        cfg.seed = 80;
        let scenario = coca_core::engine::Scenario::build(cfg);
        let full = scenario.rt.full_compute().as_millis_f64();
        let r = run_edge_only(&scenario, 2, 100);
        assert_eq!(r.frames, 2 * 2 * 100);
        assert!((r.mean_latency_ms - full).abs() < 1e-9);
        assert_eq!(r.hit_ratio, 0.0);
        assert!(r.accuracy_pct > 60.0, "accuracy {}", r.accuracy_pct);
    }
}
