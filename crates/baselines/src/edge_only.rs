//! Edge-Only: full-model inference on every frame (§VI.B).
//!
//! The reference point every acceleration method is measured against —
//! both for latency (no cache, no lookup overhead) and for accuracy (no
//! early-exit errors). As a [`MethodDriver`] it is fully degenerate: no
//! allocation phase, no server queries, no uploads — clients boot and burn
//! through frames at full-model cost inside the shared event loop.

use coca_core::driver::{
    drive, drive_plan, DriveConfig, DrivePlan, FrameOutcome, FrameStep, MethodDriver, NoMsg,
};
use coca_core::engine::Scenario;
use coca_data::Frame;
use coca_model::ClientFeatureView;
use coca_sim::SimDuration;

use crate::report::MethodReport;

/// The Edge-Only method driver.
pub struct EdgeOnlyDriver<'s> {
    scenario: &'s Scenario,
    views: Vec<ClientFeatureView>,
    full: SimDuration,
}

impl<'s> EdgeOnlyDriver<'s> {
    /// Builds the driver over a scenario.
    pub fn new(scenario: &'s Scenario) -> Self {
        let n = scenario.profiles.len();
        Self {
            scenario,
            views: (0..n).map(|_| ClientFeatureView::new()).collect(),
            full: scenario.rt.full_compute(),
        }
    }
}

impl MethodDriver for EdgeOnlyDriver<'_> {
    type Request = NoMsg;
    type Alloc = NoMsg;
    type Query = NoMsg;
    type Reply = NoMsg;
    type Upload = NoMsg;

    fn name(&self) -> &str {
        "Edge-Only"
    }

    fn process_frame(&mut self, k: usize, frame: &Frame) -> FrameStep<NoMsg> {
        let rt = &self.scenario.rt;
        let p = rt.classify(frame, &self.scenario.profiles[k], &mut self.views[k]);
        FrameStep::Done(FrameOutcome {
            compute: self.full,
            correct: p.correct,
            hit_point: None,
        })
    }
}

/// Runs Edge-Only over `rounds × frames_per_round` frames per client
/// through the generic engine.
pub fn run_edge_only(scenario: &Scenario, rounds: usize, frames_per_round: usize) -> MethodReport {
    run_edge_only_with(scenario, &DriveConfig::new(rounds, frames_per_round))
}

/// Runs Edge-Only under explicit engine knobs — pass the *same*
/// [`DriveConfig`] to every method of a comparison so all rows price
/// identical network and boot conditions.
pub fn run_edge_only_with(scenario: &Scenario, drive_cfg: &DriveConfig) -> MethodReport {
    let mut driver = EdgeOnlyDriver::new(scenario);
    let report = drive(scenario, &mut driver, drive_cfg);
    MethodReport::from_engine("Edge-Only", report)
}

/// Runs Edge-Only under an explicit [`DrivePlan`] — the dynamic-scenario
/// entry point (mid-run joins, early leaves, time-varying links). Edge-
/// Only has no shared state, so churn needs no method-side handling.
pub fn run_edge_only_plan(scenario: &Scenario, plan: &DrivePlan) -> MethodReport {
    let mut driver = EdgeOnlyDriver::new(scenario);
    let report = drive_plan(scenario, &mut driver, plan);
    MethodReport::from_engine("Edge-Only", report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use coca_core::engine::ScenarioConfig;
    use coca_data::DatasetSpec;
    use coca_model::ModelId;

    #[test]
    fn edge_only_has_constant_latency_and_no_hits() {
        let mut cfg = ScenarioConfig::new(ModelId::ResNet101, DatasetSpec::ucf101().subset(20));
        cfg.num_clients = 2;
        cfg.seed = 80;
        let scenario = coca_core::engine::Scenario::build(cfg);
        let full = scenario.rt.full_compute().as_millis_f64();
        let r = run_edge_only(&scenario, 2, 100);
        assert_eq!(r.frames, 2 * 2 * 100);
        assert!((r.mean_latency_ms - full).abs() < 1e-9);
        assert_eq!(r.hit_ratio, 0.0);
        assert!(r.accuracy_pct > 60.0, "accuracy {}", r.accuracy_pct);
    }
}
