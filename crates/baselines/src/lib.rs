//! # coca-baselines — the paper's comparison systems
//!
//! Full implementations of every baseline the evaluation compares against
//! (§VI.B), all driven over the *same* [`coca_core::engine::Scenario`] so
//! each method sees byte-identical frame streams:
//!
//! * [`edge_only`] — plain full-model inference (the latency/accuracy
//!   reference).
//! * [`smtm`] — SMTM-style single-client semantic caching: all preset
//!   cache layers active, hot-spot classes chosen *locally* by frequency ×
//!   recency (95 % mass), local centroid updates, no cross-client sharing.
//! * [`foggycache`] — FoggyCache-style cross-device approximate
//!   computation reuse: A-LSH indexed sample cache over shallow features,
//!   H-kNN homogenized voting, LRU replacement, server-side global store
//!   queried on local misses.
//! * [`learnedcache`] — LearnedCache-style multi-exit inference with
//!   per-exit learned predictors (nearest-centroid probes trained on
//!   recent self-labelled samples) and periodic retraining whose compute
//!   is charged to the client.
//! * [`replacement`] — the classical cache-replacement policies of Fig. 8
//!   (LRU / FIFO / RAND) applied to semantic cache entries on a fixed
//!   high-benefit layer set.
//! * [`report`] — the common [`report::MethodReport`] all drivers emit.

pub mod edge_only;
pub mod foggycache;
pub mod learnedcache;
pub mod replacement;
pub mod report;
pub mod smtm;

pub use edge_only::run_edge_only;
pub use foggycache::FoggyCacheConfig;
pub use learnedcache::LearnedCacheConfig;
pub use replacement::ReplacementPolicy;
pub use report::MethodReport;
pub use smtm::SmtmConfig;
