//! # coca-baselines — the paper's comparison systems
//!
//! Full implementations of every baseline the evaluation compares against
//! (§VI.B). Each baseline is a
//! [`MethodDriver`](coca_core::driver::MethodDriver) plugged into the
//! **same generic virtual-time engine** ([`coca_core::driver::drive`]) that
//! runs CoCa: identical staggered boots, link transfer delays and server
//! FIFO queueing, over the *same* [`coca_core::engine::Scenario`] — so
//! each method sees byte-identical frame streams (asserted via
//! [`MethodReport::frame_digest`]) under identical contention:
//!
//! * [`edge_only`] — plain full-model inference (the latency/accuracy
//!   reference); a fully degenerate driver with no server traffic.
//! * [`smtm`] — SMTM-style single-client semantic caching: all preset
//!   cache layers active, hot-spot classes chosen *locally* by frequency ×
//!   recency (95 % mass), local centroid updates, no cross-client sharing.
//! * [`foggycache`] — FoggyCache-style cross-device approximate
//!   computation reuse: A-LSH indexed sample cache over shallow features,
//!   H-kNN homogenized voting, LRU replacement. The server-side global
//!   store is queried on local misses through **real request/response
//!   event pairs** (uplink + FIFO queue + service + downlink).
//! * [`learnedcache`] — LearnedCache-style multi-exit inference with
//!   per-exit learned predictors (nearest-centroid probes trained on
//!   recent self-labelled samples) and periodic retraining whose compute
//!   is charged to the client.
//! * [`replacement`] — the classical cache-replacement policies of Fig. 8
//!   (LRU / FIFO / RAND) applied to semantic cache entries on a fixed
//!   high-benefit layer set.
//! * [`report`] — the common [`report::MethodReport`] all drivers emit.

pub mod edge_only;
pub mod foggycache;
pub mod learnedcache;
pub mod replacement;
pub mod report;
pub mod smtm;

pub use edge_only::{run_edge_only, run_edge_only_plan, run_edge_only_with, EdgeOnlyDriver};
pub use foggycache::{
    run_foggycache_plan, run_foggycache_with, FoggyCacheConfig, FoggyCacheDriver,
};
pub use learnedcache::{
    run_learnedcache_plan, run_learnedcache_with, LearnedCacheConfig, LearnedCacheDriver,
};
pub use replacement::{
    run_replacement_plan, run_replacement_with, ReplacementDriver, ReplacementPolicy,
};
pub use report::MethodReport;
pub use smtm::{run_smtm_plan, run_smtm_with, SmtmConfig, SmtmDriver};

#[cfg(test)]
mod fairness_tests {
    //! Cross-method fairness: every driver consumes byte-identical frame
    //! streams from the shared scenario, and every run is deterministic.

    use crate::foggycache::run_foggycache;
    use crate::learnedcache::run_learnedcache;
    use crate::replacement::run_replacement;
    use crate::smtm::run_smtm;
    use crate::{run_edge_only, FoggyCacheConfig, LearnedCacheConfig, SmtmConfig};
    use coca_core::engine::{Engine, EngineConfig, Scenario, ScenarioConfig};
    use coca_core::CocaConfig;
    use coca_data::DatasetSpec;
    use coca_model::ModelId;

    fn scenario_cfg(seed: u64) -> ScenarioConfig {
        let mut cfg = ScenarioConfig::new(ModelId::ResNet101, DatasetSpec::ucf101().subset(20));
        cfg.num_clients = 3;
        cfg.seed = seed;
        cfg
    }

    #[test]
    fn all_six_methods_consume_byte_identical_frame_streams() {
        let (rounds, frames) = (2, 80);
        let coca_cfg = CocaConfig::for_model(ModelId::ResNet101).with_round_frames(frames);
        let sc = scenario_cfg(300);

        let digests: Vec<(String, u64)> = vec![
            {
                let s = Scenario::build(sc.clone());
                let r = run_edge_only(&s, rounds, frames);
                (r.name, r.frame_digest)
            },
            {
                let s = Scenario::build(sc.clone());
                let r = run_smtm(&s, &SmtmConfig::from_coca(&coca_cfg), rounds, frames);
                (r.name, r.frame_digest)
            },
            {
                let s = Scenario::build(sc.clone());
                let r = run_foggycache(&s, &FoggyCacheConfig::default(), rounds, frames);
                (r.name, r.frame_digest)
            },
            {
                let s = Scenario::build(sc.clone());
                let cfg = LearnedCacheConfig::for_model(coca_cfg.theta, frames);
                let r = run_learnedcache(&s, &cfg, rounds, frames);
                (r.name, r.frame_digest)
            },
            {
                let s = Scenario::build(sc.clone());
                let r = run_replacement(&s, crate::ReplacementPolicy::Lru, 10, 4, rounds, frames);
                (r.name, r.frame_digest)
            },
            {
                let mut engine_cfg = EngineConfig::new(coca_cfg);
                engine_cfg.rounds = rounds;
                let mut engine = Engine::new(Scenario::build(sc.clone()), engine_cfg);
                let r = engine.run();
                ("CoCa".to_string(), r.frame_digest)
            },
        ];

        let reference = digests[0].1;
        assert_ne!(reference, 0, "digest must be populated");
        for (name, digest) in &digests {
            assert_eq!(
                *digest, reference,
                "{name} consumed a different frame stream than {}",
                digests[0].0
            );
        }
    }

    #[test]
    fn all_six_methods_agree_on_digest_under_a_dynamic_timeline() {
        // Churn + drift + link dynamics: the fairness invariant must hold
        // for the same reason it holds statically — frame-consuming
        // events are keyed in client-progress space.
        use coca_core::spec::{PopularityShift, ScenarioSpec};
        use coca_net::LinkModel;
        use coca_sim::SimDuration;

        let frames = 60;
        let coca_cfg = CocaConfig::for_model(ModelId::ResNet101).with_round_frames(frames);
        let spec = ScenarioSpec::new(scenario_cfg(320), 3, frames)
            .join(4_000.0, 2)
            .leave(1, 2)
            .popularity_shift(None, 90, PopularityShift::Rotate(5))
            .link_change(
                Some(0),
                2_000.0,
                LinkModel {
                    one_way_delay: SimDuration::from_millis(30),
                    bandwidth_bps: 2.0e6,
                },
            );
        let expected_frames = ((3 - 1) * 3 + 2 + 2) as u64 * frames as u64;

        let digests: Vec<(String, u64, u64)> = vec![
            {
                let (s, plan) = spec.materialize();
                let r = crate::run_edge_only_plan(&s, &plan);
                (r.name, r.frame_digest, r.frames)
            },
            {
                let (s, plan) = spec.materialize();
                let r = crate::run_smtm_plan(&s, &SmtmConfig::from_coca(&coca_cfg), &plan);
                (r.name, r.frame_digest, r.frames)
            },
            {
                let (s, plan) = spec.materialize();
                let r = crate::run_foggycache_plan(&s, &FoggyCacheConfig::default(), &plan);
                (r.name, r.frame_digest, r.frames)
            },
            {
                let (s, plan) = spec.materialize();
                let cfg = LearnedCacheConfig::for_model(coca_cfg.theta, frames);
                let r = crate::run_learnedcache_plan(&s, &cfg, &plan);
                (r.name, r.frame_digest, r.frames)
            },
            {
                let (s, plan) = spec.materialize();
                let r =
                    crate::run_replacement_plan(&s, crate::ReplacementPolicy::Lru, 10, 4, &plan);
                (r.name, r.frame_digest, r.frames)
            },
            {
                let (s, plan) = spec.materialize();
                let mut engine = Engine::new(s, EngineConfig::new(coca_cfg));
                let r = engine.run_plan(&plan);
                ("CoCa".to_string(), r.frame_digest, r.frames)
            },
        ];
        let reference = digests[0].1;
        assert_ne!(reference, 0);
        for (name, digest, n) in &digests {
            assert_eq!(*digest, reference, "{name} diverged from the shared stream");
            assert_eq!(*n, expected_frames, "{name} consumed a different count");
        }
    }

    #[test]
    fn every_baseline_run_is_deterministic() {
        // Mirrors `engine_is_deterministic` for each ported driver: same
        // scenario, same config → bit-identical report.
        let (rounds, frames) = (2, 60);
        let coca_cfg = CocaConfig::for_model(ModelId::ResNet101).with_round_frames(frames);
        let runs: Vec<Box<dyn Fn() -> crate::MethodReport>> = vec![
            Box::new(move || run_edge_only(&Scenario::build(scenario_cfg(301)), rounds, frames)),
            Box::new(move || {
                run_smtm(
                    &Scenario::build(scenario_cfg(301)),
                    &SmtmConfig::from_coca(&coca_cfg),
                    rounds,
                    frames,
                )
            }),
            Box::new(move || {
                run_foggycache(
                    &Scenario::build(scenario_cfg(301)),
                    &FoggyCacheConfig::default(),
                    rounds,
                    frames,
                )
            }),
            Box::new(move || {
                run_learnedcache(
                    &Scenario::build(scenario_cfg(301)),
                    &LearnedCacheConfig::for_model(coca_cfg.theta, frames),
                    rounds,
                    frames,
                )
            }),
            Box::new(move || {
                run_replacement(
                    &Scenario::build(scenario_cfg(301)),
                    crate::ReplacementPolicy::Rand,
                    8,
                    4,
                    rounds,
                    frames,
                )
            }),
        ];
        for run in runs {
            let a = run();
            let b = run();
            assert_eq!(a.mean_latency_ms, b.mean_latency_ms, "{} latency", a.name);
            assert_eq!(a.accuracy_pct, b.accuracy_pct, "{} accuracy", a.name);
            assert_eq!(a.hit_ratio, b.hit_ratio, "{} hit ratio", a.name);
            assert_eq!(a.frame_digest, b.frame_digest, "{} digest", a.name);
        }
    }
}
