//! The common result type emitted by every method driver.

use coca_metrics::recorder::{AccuracyRecorder, HitRecorder, LatencyRecorder, RunSummary};
use serde::{Deserialize, Serialize};

/// Aggregated outcome of running one method over a scenario.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MethodReport {
    /// Method name as printed in tables (e.g. `"FoggyCache"`).
    pub name: String,
    /// Frames processed across all clients.
    pub frames: u64,
    /// Mean end-to-end inference latency in milliseconds.
    pub mean_latency_ms: f64,
    /// Overall accuracy in percent.
    pub accuracy_pct: f64,
    /// Overall cache/exit hit ratio (0 for Edge-Only).
    pub hit_ratio: f64,
    /// Global per-frame latency distribution.
    pub latency: LatencyRecorder,
    /// Per-client summaries.
    pub per_client: Vec<RunSummary>,
}

impl MethodReport {
    /// Builds the report from per-client summaries plus the global
    /// latency recorder the driver maintained.
    pub fn from_parts(
        name: impl Into<String>,
        latency: LatencyRecorder,
        per_client: Vec<RunSummary>,
    ) -> Self {
        let mut acc = AccuracyRecorder::new();
        let mut hits = HitRecorder::new(0);
        for s in &per_client {
            acc.merge(&s.accuracy);
            hits.merge(&s.hits);
        }
        Self {
            name: name.into(),
            frames: latency.count(),
            mean_latency_ms: latency.mean_ms(),
            accuracy_pct: acc.accuracy_pct(),
            hit_ratio: hits.hit_ratio(),
            latency,
            per_client,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coca_sim::SimDuration;

    #[test]
    fn from_parts_aggregates() {
        let mut lat = LatencyRecorder::new();
        lat.record(SimDuration::from_millis(10));
        lat.record(SimDuration::from_millis(30));
        let mut a = RunSummary::new(2);
        a.accuracy.record(true);
        a.hits.record_hit(0, true);
        let mut b = RunSummary::new(2);
        b.accuracy.record(false);
        b.hits.record_miss(false);
        let r = MethodReport::from_parts("Demo", lat, vec![a, b]);
        assert_eq!(r.frames, 2);
        assert_eq!(r.mean_latency_ms, 20.0);
        assert_eq!(r.accuracy_pct, 50.0);
        assert_eq!(r.hit_ratio, 0.5);
    }
}
