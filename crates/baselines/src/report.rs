//! The common result type emitted by every method driver.

use coca_core::engine::EngineReport;
use coca_metrics::recorder::{LatencyRecorder, RunSummary};
use coca_metrics::WindowedSummary;
use serde::{Deserialize, Serialize};

/// Aggregated outcome of running one method over a scenario.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MethodReport {
    /// Method name as printed in tables (e.g. `"FoggyCache"`).
    pub name: String,
    /// Frames processed across all clients.
    pub frames: u64,
    /// Mean end-to-end inference latency in milliseconds.
    pub mean_latency_ms: f64,
    /// Overall accuracy in percent.
    pub accuracy_pct: f64,
    /// Overall cache/exit hit ratio (0 for Edge-Only).
    pub hit_ratio: f64,
    /// Order-independent digest of the `(client, frame)` stream consumed;
    /// equal digests prove two methods saw byte-identical workloads.
    pub frame_digest: u64,
    /// Global per-frame latency distribution.
    pub latency: LatencyRecorder,
    /// Per-interval (virtual-time window) hit/latency/accuracy series.
    pub windowed: WindowedSummary,
    /// Per-client summaries.
    pub per_client: Vec<RunSummary>,
}

impl MethodReport {
    /// Builds the report from a generic-engine run.
    pub fn from_engine(name: impl Into<String>, report: EngineReport) -> Self {
        Self {
            name: name.into(),
            frames: report.frames,
            mean_latency_ms: report.mean_latency_ms,
            accuracy_pct: report.accuracy_pct,
            hit_ratio: report.hit_ratio,
            frame_digest: report.frame_digest,
            latency: report.latency,
            windowed: report.windowed,
            per_client: report.per_client,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coca_core::driver::{drive, DriveConfig};
    use coca_core::engine::{Scenario, ScenarioConfig};
    use coca_data::DatasetSpec;
    use coca_model::ModelId;

    #[test]
    fn from_engine_copies_every_aggregate() {
        let mut sc = ScenarioConfig::new(ModelId::ResNet101, DatasetSpec::ucf101().subset(20));
        sc.num_clients = 2;
        sc.seed = 310;
        let scenario = Scenario::build(sc);
        let mut driver = crate::EdgeOnlyDriver::new(&scenario);
        let engine = drive(&scenario, &mut driver, &DriveConfig::new(1, 50));
        let digest = engine.frame_digest;
        let r = MethodReport::from_engine("Demo", engine);
        assert_eq!(r.name, "Demo");
        assert_eq!(r.frames, 2 * 50);
        assert_eq!(r.per_client.len(), 2);
        assert_ne!(r.frame_digest, 0);
        assert_eq!(r.frame_digest, digest);
    }
}
