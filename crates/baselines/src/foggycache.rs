//! FoggyCache-style cross-device approximate computation reuse (§VI.B).
//!
//! Guo et al., MobiCom'18. Mechanism as the paper describes it:
//!
//! * Inference requests are first looked up in a **local sample cache**
//!   keyed by shallow input-level features, indexed with **A-LSH**
//!   (adaptive random-hyperplane LSH) and answered by **H-kNN**
//!   (homogenized k-nearest-neighbour voting).
//! * On a local miss the query goes to the **server's global store**,
//!   which aggregates samples from all clients (the cross-client reuse).
//! * Stores evict with plain **LRU** — exactly the weakness the paper
//!   exploits under long-tail distributions.
//!
//! Unlike the semantic-cache methods, entries are *individual samples*
//! (feature vector + label), not class centroids.
//!
//! As a [`MethodDriver`], the remote lookup is a **real request/response
//! event pair** through the shared engine: the query pays feature-vector
//! uplink, server FIFO queue wait, an H-kNN service time, and reply
//! downlink — the same contention model CoCa's allocation traffic faces —
//! instead of the flat `server_rtt_ms` the old private loop charged.
//! Samples learned from full inferences piggyback onto the reply cycle
//! (inserted into the shared store at resume time, no extra charge).

use std::collections::HashMap;

use coca_core::driver::{
    drive, drive_plan, DriveConfig, DrivePlan, FrameOutcome, FrameStep, MethodDriver, NoMsg,
};
use coca_core::engine::Scenario;
use coca_data::Frame;
use coca_model::ClientFeatureView;
use coca_net::WireSize;
use coca_sim::{SeedTree, SimDuration};
use serde::{Deserialize, Serialize};

use crate::report::MethodReport;

/// FoggyCache driver configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct FoggyCacheConfig {
    /// Neighbours consulted by H-kNN.
    pub k: usize,
    /// Minimum fraction of the k neighbours agreeing on one class.
    pub homogeneity: f64,
    /// Minimum mean cosine similarity of the majority neighbours.
    pub min_similarity: f32,
    /// Local sample-cache capacity.
    pub local_capacity: usize,
    /// Server global-store capacity.
    pub server_capacity: usize,
    /// LSH tables.
    pub lsh_tables: usize,
    /// Initial hyperplanes (bits) per table; adapted per round.
    pub lsh_bits: usize,
    /// Input-level jitter added to the matching key. FoggyCache keys on
    /// *raw input* features, which vary across consecutive video frames
    /// (motion, exposure) far more than pooled semantic features do; the
    /// jitter models that brittleness.
    pub input_jitter: f32,
}

impl Default for FoggyCacheConfig {
    fn default() -> Self {
        Self {
            k: 5,
            homogeneity: 1.0,
            min_similarity: 0.65,
            local_capacity: 300,
            server_capacity: 12_000,
            lsh_tables: 4,
            lsh_bits: 10,
            input_jitter: 0.08,
        }
    }
}

/// One stored sample. Its whitened match key lives as a row of the
/// store's contiguous [`coca_math::VectorStore`], not here — the H-kNN
/// scan streams one flat buffer instead of chasing per-sample heap rows.
#[derive(Debug, Clone)]
struct Sample {
    /// Raw feature (kept for re-keying when the center freezes).
    feature: Vec<f32>,
    label: usize,
    last_used: u64,
    /// Client that contributed the sample — provenance for retiring a
    /// leaver's contributions from the shared global store.
    owner: u32,
}

/// Adaptive random-hyperplane LSH over one store.
struct Alsh {
    /// `planes[t]` — hyperplanes of table `t` (bits × dim, row-major).
    planes: Vec<Vec<f32>>,
    bits: usize,
    dim: usize,
    tables: Vec<HashMap<u64, Vec<u32>>>,
    /// Rolling candidate-count statistics for adaptation.
    probe_count: u64,
    candidate_sum: u64,
}

impl Alsh {
    fn new(dim: usize, tables: usize, bits: usize, seeds: &SeedTree) -> Self {
        let mut planes = Vec::with_capacity(tables);
        for t in 0..tables {
            let mut rng = seeds.rng_for_idx("alsh-table", t as u64);
            let mut p = Vec::with_capacity(bits * dim);
            for _ in 0..bits * dim {
                p.push(coca_math::vector::standard_normal(&mut rng));
            }
            planes.push(p);
        }
        Self {
            planes,
            bits,
            dim,
            tables: vec![HashMap::new(); tables],
            probe_count: 0,
            candidate_sum: 0,
        }
    }

    fn signature(&self, table: usize, v: &[f32]) -> u64 {
        let planes = &self.planes[table];
        let mut sig = 0u64;
        for b in 0..self.bits {
            let row = &planes[b * self.dim..(b + 1) * self.dim];
            if coca_math::dot(row, v) >= 0.0 {
                sig |= 1 << b;
            }
        }
        sig
    }

    fn insert(&mut self, id: u32, v: &[f32]) {
        for t in 0..self.tables.len() {
            let sig = self.signature(t, v);
            self.tables[t].entry(sig).or_default().push(id);
        }
    }

    fn remove(&mut self, id: u32, v: &[f32]) {
        for t in 0..self.tables.len() {
            let sig = self.signature(t, v);
            if let Some(bucket) = self.tables[t].get_mut(&sig) {
                bucket.retain(|&x| x != id);
            }
        }
    }

    /// Candidate ids across all tables (deduplicated).
    fn candidates(&mut self, v: &[f32]) -> Vec<u32> {
        let mut out: Vec<u32> = Vec::new();
        for t in 0..self.tables.len() {
            let sig = self.signature(t, v);
            if let Some(bucket) = self.tables[t].get(&sig) {
                out.extend_from_slice(bucket);
            }
        }
        out.sort_unstable();
        out.dedup();
        self.probe_count += 1;
        self.candidate_sum += out.len() as u64;
        out
    }

    /// Mean candidates per probe since the last adaptation.
    fn mean_candidates(&self) -> f64 {
        if self.probe_count == 0 {
            0.0
        } else {
            self.candidate_sum as f64 / self.probe_count as f64
        }
    }

    fn reset_stats(&mut self) {
        self.probe_count = 0;
        self.candidate_sum = 0;
    }
}

/// Number of samples observed before a store freezes its centering
/// direction (see [`Store::whiten_with`]).
const CENTER_FREEZE: usize = 50;

/// A sample store with A-LSH index and LRU eviction.
///
/// Features are **mean-centered** before indexing and matching: pooled
/// CNN features share a dominant layer-common direction (all cosines are
/// ≈ 0.99 in the raw space), which would make nearest-neighbour search
/// meaningless. FoggyCache's feature pipeline normalizes its keys; we
/// reproduce that by subtracting the running mean of the first
/// [`CENTER_FREEZE`] observed features (frozen thereafter so LSH
/// signatures stay stable) and re-normalizing.
struct Store {
    samples: HashMap<u32, Sample>,
    /// Whitened match keys, one contiguous row per live sample.
    keys: coca_math::VectorStore,
    /// Row → sample id, parallel to `keys`.
    slot_ids: Vec<u32>,
    /// Sample id → row: the same bitmap-occupancy slot map the columnar
    /// `GlobalCacheTable` layers use — ids are allocated by a monotone
    /// counter, so liveness is one bit test and lookups one indexed load
    /// instead of a hash probe.
    slot_of: coca_math::SlotMap,
    next_id: u32,
    capacity: usize,
    alsh: Alsh,
    clock: u64,
    /// A-LSH adaptation target band for mean candidates per probe.
    target: (f64, f64),
    seeds: SeedTree,
    /// Running sum of observed features until freeze.
    center_sum: Vec<f32>,
    center_seen: usize,
    /// Frozen centering direction (unit), once enough samples arrived.
    center: Option<Vec<f32>>,
}

impl Store {
    fn new(dim: usize, capacity: usize, cfg: &FoggyCacheConfig, seeds: SeedTree) -> Self {
        let alsh = Alsh::new(dim, cfg.lsh_tables, cfg.lsh_bits, &seeds);
        let k = cfg.k as f64;
        Self {
            samples: HashMap::new(),
            keys: coca_math::VectorStore::new(dim),
            slot_ids: Vec::new(),
            slot_of: coca_math::SlotMap::new(),
            next_id: 0,
            capacity,
            alsh,
            clock: 0,
            target: (2.0 * k, 10.0 * k),
            seeds,
            center_sum: vec![0.0; dim],
            center_seen: 0,
            center: None,
        }
    }

    /// Removes one sample from the map, the key store and the A-LSH index.
    fn remove_sample(&mut self, id: u32) {
        self.samples.remove(&id).expect("sample exists");
        let row = self.slot_of.remove(id).expect("slot exists") as usize;
        self.alsh.remove(id, self.keys.row(row));
        self.keys.swap_remove_row(row);
        let removed = self.slot_ids.swap_remove(row);
        debug_assert_eq!(removed, id);
        if row < self.slot_ids.len() {
            // The last row moved into the vacated slot.
            self.slot_of.insert(self.slot_ids[row], row as u32);
        }
    }

    /// Registers `key` as the match key of the (new) sample `id`.
    fn index_key(&mut self, id: u32, key: &[f32]) {
        self.alsh.insert(id, key);
        let row = self.keys.push_row(key);
        self.slot_ids.push(id);
        self.slot_of.insert(id, row as u32);
    }

    /// Observes a raw feature for centering; freezes the center (and
    /// re-indexes the store) once enough samples arrived.
    fn observe_for_center(&mut self, v: &[f32]) {
        if self.center.is_some() {
            return;
        }
        coca_math::vector::axpy(1.0, v, &mut self.center_sum);
        self.center_seen += 1;
        if self.center_seen >= CENTER_FREEZE {
            let mut c = std::mem::take(&mut self.center_sum);
            coca_math::vector::l2_normalize(&mut c);
            self.center = Some(c);
            // Re-key everything under the whitened space. Ids are sorted
            // so the rebuilt key store's row order is deterministic.
            let dim = self.alsh.dim;
            let bits = self.alsh.bits;
            let tables = self.alsh.tables.len();
            let mut alsh = Alsh::new(dim, tables, bits, &self.seeds.child("post-freeze"));
            let mut ids: Vec<u32> = self.samples.keys().copied().collect();
            ids.sort_unstable();
            let mut keys = coca_math::VectorStore::new(dim);
            let mut slot_of = coca_math::SlotMap::new();
            for (row, &id) in ids.iter().enumerate() {
                let w = self.whiten_with(&self.samples[&id].feature);
                alsh.insert(id, &w);
                keys.push_row(&w);
                slot_of.insert(id, row as u32);
            }
            self.alsh = alsh;
            self.keys = keys;
            self.slot_ids = ids;
            self.slot_of = slot_of;
        }
    }

    /// Centers and re-normalizes a raw feature (identity before freeze).
    fn whiten_with(&self, v: &[f32]) -> Vec<f32> {
        match &self.center {
            None => v.to_vec(),
            Some(c) => {
                let proj = coca_math::dot(v, c);
                let mut out = v.to_vec();
                coca_math::vector::axpy(-proj, c, &mut out);
                coca_math::vector::l2_normalize(&mut out);
                out
            }
        }
    }

    fn insert(&mut self, feature: Vec<f32>, label: usize, owner: u32) {
        self.observe_for_center(&feature);
        if self.samples.len() >= self.capacity {
            // LRU eviction.
            // Tie-break equal-recency victims by id: HashMap iteration
            // order is per-process random, and cross-process runs must be
            // byte-identical.
            if let Some((&victim, _)) = self.samples.iter().min_by_key(|(&id, s)| (s.last_used, id))
            {
                self.remove_sample(victim);
            }
        }
        let id = self.next_id;
        self.next_id += 1;
        self.clock += 1;
        let key = self.whiten_with(&feature);
        self.index_key(id, &key);
        self.samples.insert(
            id,
            Sample {
                feature,
                label,
                last_used: self.clock,
                owner,
            },
        );
    }

    /// Removes every sample contributed by `owner` (a departed client)
    /// from the store and its A-LSH index. Returns how many were retired.
    fn retire_owner(&mut self, owner: u32) -> usize {
        // Sorted for a deterministic removal order (HashMap iteration is
        // per-process random).
        let mut victims: Vec<u32> = self
            .samples
            .iter()
            .filter(|(_, s)| s.owner == owner)
            .map(|(&id, _)| id)
            .collect();
        victims.sort_unstable();
        for &id in &victims {
            self.remove_sample(id);
        }
        victims.len()
    }

    /// H-kNN lookup: `Some((label, candidates_scanned))` on a homogeneous,
    /// sufficiently similar neighbourhood.
    fn lookup(&mut self, v: &[f32], cfg: &FoggyCacheConfig) -> (Option<usize>, usize) {
        if self.center.is_none() {
            // Warmup: the key space is not yet established.
            return (None, 0);
        }
        let v = self.whiten_with(v);
        let v = v.as_slice();
        let cand = self.alsh.candidates(v);
        let scanned = cand.len();
        if cand.len() < cfg.k {
            return (None, scanned);
        }
        // k nearest among the candidates: one fused pass over the
        // contiguous key store (keys are unit-norm by construction, so the
        // norm-free dot is the cosine). Candidates arrive id-ascending and
        // `knn_k` breaks similarity ties toward the smaller tag — the same
        // order the seed's stable sort produced.
        let rows: Vec<(u32, u32)> = cand
            .into_iter()
            .filter_map(|id| self.slot_of.get(id).map(|row| (row, id)))
            .collect();
        let scored = self.keys.knn_k(v, &rows, cfg.k);
        if scored.len() < cfg.k {
            return (None, scanned);
        }
        // Majority vote + homogeneity + similarity checks.
        let mut votes: HashMap<usize, (usize, f32)> = HashMap::new();
        for &(sim, id) in &scored {
            let label = self.samples[&id].label;
            let e = votes.entry(label).or_insert((0, 0.0));
            e.0 += 1;
            e.1 += sim;
        }
        // Tie-break equal vote counts by smallest label: HashMap iteration
        // order is per-process random, and cross-process runs must be
        // byte-identical.
        let (&label, &(count, sim_sum)) = votes
            .iter()
            .max_by_key(|(&l, &(c, _))| (c, std::cmp::Reverse(l)))
            .expect("non-empty");
        let homogeneity = count as f64 / cfg.k as f64;
        let mean_sim = sim_sum / count as f32;
        if homogeneity >= cfg.homogeneity && mean_sim >= cfg.min_similarity {
            self.clock += 1;
            for &(_, id) in &scored {
                if let Some(s) = self.samples.get_mut(&id) {
                    if s.label == label {
                        s.last_used = self.clock;
                    }
                }
            }
            (Some(label), scanned)
        } else {
            (None, scanned)
        }
    }

    /// Adapts the LSH granularity toward the target candidate band by
    /// rebuilding with more/fewer bits (the "A" in A-LSH).
    fn adapt(&mut self, cfg: &FoggyCacheConfig) {
        let mean = self.alsh.mean_candidates();
        let new_bits = if mean > self.target.1 && self.alsh.bits < 24 {
            self.alsh.bits + 1
        } else if mean < self.target.0 && self.alsh.bits > 4 {
            self.alsh.bits - 1
        } else {
            self.alsh.reset_stats();
            return;
        };
        let dim = self.alsh.dim;
        let mut alsh = Alsh::new(
            dim,
            cfg.lsh_tables,
            new_bits,
            &self.seeds.child_idx("rebuild", new_bits as u64),
        );
        for (row, &id) in self.slot_ids.iter().enumerate() {
            alsh.insert(id, self.keys.row(row));
        }
        self.alsh = alsh;
    }
}

/// A remote H-kNN lookup: the client's input-level feature vector.
#[derive(Debug, Clone)]
pub struct FoggyQuery {
    /// The (jittered, normalized) query feature.
    pub vector: Vec<f32>,
}

impl WireSize for FoggyQuery {
    fn wire_bytes(&self) -> usize {
        self.vector.wire_bytes()
    }
}

/// The server's H-kNN answer.
#[derive(Debug, Clone, Copy)]
pub struct FoggyReply {
    /// The reused label, if the global neighbourhood was homogeneous.
    pub label: Option<usize>,
}

impl WireSize for FoggyReply {
    fn wire_bytes(&self) -> usize {
        1 + 4
    }
}

/// One FoggyCache client: its local store plus per-frame state.
struct FoggyClient {
    local: Store,
    view: ClientFeatureView,
    /// Feature of the frame currently awaiting a server reply.
    pending_vec: Option<Vec<f32>>,
}

/// The FoggyCache method driver: local A-LSH stores per client, one shared
/// global store served through the engine's FIFO queue.
pub struct FoggyCacheDriver<'s> {
    scenario: &'s Scenario,
    cfg: FoggyCacheConfig,
    seeds: SeedTree,
    server_store: Store,
    clients: Vec<FoggyClient>,
    feature_point: usize,
    feature_time: SimDuration,
    /// Client-rounds completed; the shared store adapts once per full
    /// sweep of the fleet.
    rounds_completed: usize,
}

impl<'s> FoggyCacheDriver<'s> {
    /// Builds the driver over a scenario.
    pub fn new(scenario: &'s Scenario, cfg: FoggyCacheConfig) -> Self {
        let rt = &scenario.rt;
        let feature_point = 0usize; // shallow, input-level features
        let dim = rt.feature_dim(feature_point);
        let seeds = scenario.seeds().child("foggycache");
        let server_store = Store::new(dim, cfg.server_capacity, &cfg, seeds.child("server"));
        let clients = (0..scenario.profiles.len())
            .map(|k| FoggyClient {
                local: Store::new(
                    dim,
                    cfg.local_capacity,
                    &cfg,
                    seeds.child_idx("local", k as u64),
                ),
                view: ClientFeatureView::new(),
                pending_vec: None,
            })
            .collect();
        Self {
            scenario,
            cfg,
            seeds,
            server_store,
            clients,
            feature_point,
            feature_time: rt.compute_to_point(feature_point),
            rounds_completed: 0,
        }
    }
}

impl MethodDriver for FoggyCacheDriver<'_> {
    type Request = NoMsg;
    type Alloc = NoMsg;
    type Query = FoggyQuery;
    type Reply = FoggyReply;
    type Upload = NoMsg;

    fn name(&self) -> &str {
        "FoggyCache"
    }

    fn process_frame(&mut self, k: usize, frame: &Frame) -> FrameStep<FoggyQuery> {
        let rt = &self.scenario.rt;
        let cfg = &self.cfg;
        let client = &mut self.clients[k];
        let mut v = rt.semantic_vector(
            frame,
            &self.scenario.profiles[k],
            self.feature_point,
            &mut client.view,
        );
        if cfg.input_jitter > 0.0 {
            let mut jrng = self.seeds.child_idx("jitter", frame.frame_seed).rng();
            let eta = coca_math::random_unit(&mut jrng, v.len());
            coca_math::vector::axpy(cfg.input_jitter, &eta, &mut v);
            coca_math::vector::l2_normalize(&mut v);
        }

        // Local lookup.
        let (local_hit, scanned) = client.local.lookup(&v, cfg);
        let elapsed = self.feature_time + rt.lookup_cost(self.feature_point, scanned + cfg.k);
        match local_hit {
            Some(label) => FrameStep::Done(FrameOutcome {
                compute: elapsed,
                correct: label == frame.class,
                hit_point: Some(self.feature_point),
            }),
            None => {
                // Remote lookup on local miss: a real request/response pair
                // through the shared link + server queue.
                client.pending_vec = Some(v.clone());
                FrameStep::NeedServer {
                    elapsed,
                    query: FoggyQuery { vector: v },
                }
            }
        }
    }

    fn serve_query(&mut self, _k: usize, query: FoggyQuery) -> (FoggyReply, SimDuration) {
        let rt = &self.scenario.rt;
        let (label, scanned) = self.server_store.lookup(&query.vector, &self.cfg);
        // Server compute: the H-kNN scan over the candidate set.
        let service = rt.lookup_cost(self.feature_point, scanned + self.cfg.k);
        (FoggyReply { label }, service)
    }

    fn resume_frame(
        &mut self,
        k: usize,
        frame: &Frame,
        reply: FoggyReply,
    ) -> FrameStep<FoggyQuery> {
        let rt = &self.scenario.rt;
        let client = &mut self.clients[k];
        let v = client
            .pending_vec
            .take()
            .expect("resume without a pending query");
        match reply.label {
            Some(label) => FrameStep::Done(FrameOutcome {
                compute: SimDuration::ZERO,
                correct: label == frame.class,
                hit_point: Some(self.feature_point),
            }),
            None => {
                // Full inference; store the sample locally and at the
                // server (the upload piggybacks on the reply cycle).
                let p = rt.classify(frame, &self.scenario.profiles[k], &mut client.view);
                let compute = rt.full_compute() - self.feature_time;
                client.local.insert(v.clone(), p.class, k as u32);
                self.server_store.insert(v, p.class, k as u32);
                FrameStep::Done(FrameOutcome {
                    compute,
                    correct: p.correct,
                    hit_point: None,
                })
            }
        }
    }

    fn end_round(&mut self, k: usize) -> Option<NoMsg> {
        // Per-round A-LSH adaptation: each local store at its own round
        // boundary, the shared store once per full sweep of the fleet.
        self.clients[k].local.adapt(&self.cfg);
        self.rounds_completed += 1;
        if self.rounds_completed.is_multiple_of(self.clients.len()) {
            self.server_store.adapt(&self.cfg);
        }
        None
    }

    fn on_leave(&mut self, k: usize) {
        // Retire the leaver's contributions from the shared global store:
        // its device is gone, and FoggyCache's cross-device reuse must not
        // keep answering from samples nobody refreshes. (The paper's LRU
        // critique still applies — retirement is immediate here because
        // the simulated server learns of the departure at the boundary.)
        self.server_store.retire_owner(k as u32);
    }
}

/// Runs FoggyCache over the scenario through the generic engine.
pub fn run_foggycache(
    scenario: &Scenario,
    cfg: &FoggyCacheConfig,
    rounds: usize,
    frames_per_round: usize,
) -> MethodReport {
    run_foggycache_with(scenario, cfg, &DriveConfig::new(rounds, frames_per_round))
}

/// Runs FoggyCache under explicit engine knobs — pass the *same*
/// [`DriveConfig`] to every method of a comparison so all rows price
/// identical network and boot conditions.
pub fn run_foggycache_with(
    scenario: &Scenario,
    cfg: &FoggyCacheConfig,
    drive_cfg: &DriveConfig,
) -> MethodReport {
    let mut driver = FoggyCacheDriver::new(scenario, *cfg);
    let report = drive(scenario, &mut driver, drive_cfg);
    MethodReport::from_engine("FoggyCache", report)
}

/// Runs FoggyCache under an explicit [`DrivePlan`] — the dynamic-scenario
/// entry point (mid-run joins, early leaves, time-varying links). A
/// leaver's samples are retired from the shared global store at its
/// departure boundary.
pub fn run_foggycache_plan(
    scenario: &Scenario,
    cfg: &FoggyCacheConfig,
    plan: &DrivePlan,
) -> MethodReport {
    let mut driver = FoggyCacheDriver::new(scenario, *cfg);
    let report = drive_plan(scenario, &mut driver, plan);
    MethodReport::from_engine("FoggyCache", report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use coca_core::engine::ScenarioConfig;
    use coca_data::DatasetSpec;
    use coca_model::ModelId;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn scenario(seed: u64) -> Scenario {
        let mut cfg = ScenarioConfig::new(ModelId::ResNet101, DatasetSpec::ucf101().subset(20));
        cfg.num_clients = 2;
        cfg.seed = seed;
        Scenario::build(cfg)
    }

    #[test]
    fn alsh_groups_similar_vectors() {
        let seeds = SeedTree::new(90);
        let mut alsh = Alsh::new(16, 4, 8, &seeds);
        let mut rng = SmallRng::seed_from_u64(1);
        let base = coca_math::random_unit(&mut rng, 16);
        // Insert perturbed copies of one vector plus unrelated vectors.
        for i in 0..20u32 {
            let mut v = base.clone();
            v[0] += 0.01 * i as f32;
            coca_math::vector::l2_normalize(&mut v);
            alsh.insert(i, &v);
        }
        for i in 20..40u32 {
            let v = coca_math::random_unit(&mut rng, 16);
            alsh.insert(i, &v);
        }
        let cands = alsh.candidates(&base);
        let close = cands.iter().filter(|&&id| id < 20).count();
        let far = cands.len() - close;
        assert!(close >= 15, "close candidates {close}");
        assert!(far < 10, "far candidates {far}");
    }

    #[test]
    fn store_lru_evicts_oldest() {
        let cfg = FoggyCacheConfig {
            local_capacity: 4,
            ..Default::default()
        };
        let mut store = Store::new(8, 4, &cfg, SeedTree::new(91));
        let mut rng = SmallRng::seed_from_u64(2);
        for i in 0..8 {
            let v = coca_math::random_unit(&mut rng, 8);
            store.insert(v, i, 0);
        }
        assert_eq!(store.samples.len(), 4);
        // The surviving labels are the most recent ones.
        let labels: Vec<usize> = store.samples.values().map(|s| s.label).collect();
        assert!(labels.iter().all(|&l| l >= 4), "labels {labels:?}");
    }

    /// Feeds enough random inserts to freeze the store's center.
    fn warm_up(store: &mut Store, rng: &mut SmallRng, dim: usize) {
        for i in 0..CENTER_FREEZE {
            let v = coca_math::random_unit(rng, dim);
            store.insert(v, 1000 + i, 0);
        }
        assert!(store.center.is_some());
    }

    #[test]
    fn hknn_requires_homogeneity() {
        let cfg = FoggyCacheConfig {
            k: 4,
            homogeneity: 1.0,
            min_similarity: 0.0,
            ..Default::default()
        };
        let mut rng = SmallRng::seed_from_u64(3);
        let base = coca_math::random_unit(&mut rng, 8);
        // Two conflicting labels in the neighbourhood: homogeneity 1.0
        // cannot be met.
        let mut store = Store::new(8, 1000, &cfg, SeedTree::new(92));
        warm_up(&mut store, &mut rng, 8);
        for i in 0..8 {
            let mut v = base.clone();
            v[1] += 0.001 * i as f32;
            coca_math::vector::l2_normalize(&mut v);
            store.insert(v, i % 2, 0);
        }
        let (hit, _) = store.lookup(&base, &cfg);
        assert_eq!(hit, None);
        // Uniform labels satisfy it.
        let mut store = Store::new(8, 1000, &cfg, SeedTree::new(93));
        warm_up(&mut store, &mut rng, 8);
        for i in 0..8 {
            let mut v = base.clone();
            v[1] += 0.001 * i as f32;
            coca_math::vector::l2_normalize(&mut v);
            store.insert(v, 7, 0);
        }
        let (hit, _) = store.lookup(&base, &cfg);
        assert_eq!(hit, Some(7));
    }

    #[test]
    fn foggycache_reuses_and_saves_time() {
        let s = scenario(94);
        let full = s.rt.full_compute().as_millis_f64();
        let r = run_foggycache(&s, &FoggyCacheConfig::default(), 3, 150);
        assert_eq!(r.frames, 2 * 3 * 150);
        assert!(r.hit_ratio > 0.15, "hit ratio {}", r.hit_ratio);
        assert!(r.mean_latency_ms < full, "{} vs {full}", r.mean_latency_ms);
        assert!(r.accuracy_pct > 55.0, "accuracy {}", r.accuracy_pct);
    }

    #[test]
    fn retire_owner_removes_only_the_leavers_samples() {
        let cfg = FoggyCacheConfig::default();
        let mut store = Store::new(8, 1000, &cfg, SeedTree::new(95));
        let mut rng = SmallRng::seed_from_u64(5);
        for i in 0..30u32 {
            let v = coca_math::random_unit(&mut rng, 8);
            store.insert(v, i as usize, i % 3);
        }
        let retired = store.retire_owner(1);
        assert_eq!(retired, 10);
        assert_eq!(store.samples.len(), 20);
        assert!(store.samples.values().all(|s| s.owner != 1));
        // The index no longer returns retired ids.
        let probe = coca_math::random_unit(&mut rng, 8);
        for id in store.alsh.candidates(&probe) {
            assert!(store.samples.contains_key(&id), "dangling id {id}");
        }
        assert_eq!(store.retire_owner(1), 0, "idempotent");
    }

    #[test]
    fn foggycache_is_deterministic() {
        let cfg = FoggyCacheConfig::default();
        let a = run_foggycache(&scenario(94), &cfg, 2, 100);
        let b = run_foggycache(&scenario(94), &cfg, 2, 100);
        assert_eq!(a.mean_latency_ms, b.mean_latency_ms);
        assert_eq!(a.accuracy_pct, b.accuracy_pct);
        assert_eq!(a.frame_digest, b.frame_digest);
    }
}
