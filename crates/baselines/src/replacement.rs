//! Classical cache-replacement policies on the semantic cache (Fig. 8).
//!
//! The paper's §VI.G comparison: a fixed set of high-expected-benefit
//! cache layers, each holding at most `cache_size` class entries, managed
//! by LRU / FIFO / RAND replacement; ACA is run with the same total memory
//! for fairness. Entries are fetched from the shared seeded centroid table
//! when inserted (the server "loads" the class's centroid to the client).
//!
//! As a [`MethodDriver`] the policies are degenerate on the network: the
//! paper treats them as local caches, so misses materialize entries from
//! the local replica of the seeded table at zero network cost and the
//! driver issues no server traffic.

use coca_core::driver::{
    drive, drive_plan, DriveConfig, DrivePlan, FrameOutcome, FrameStep, MethodDriver, NoMsg,
};
use coca_core::engine::Scenario;
use coca_core::global::GlobalCacheTable;
use coca_core::lookup::infer_with_cache;
use coca_core::semantic::{CacheLayer, LocalCache};
use coca_core::server::{profile_hit_ratios, seed_global_table};
use coca_core::CocaConfig;
use coca_data::Frame;
use coca_model::ClientFeatureView;
use rand::rngs::SmallRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::report::MethodReport;

/// The replacement policy under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReplacementPolicy {
    /// Evict the least-recently-used class entry.
    Lru,
    /// Evict the earliest-inserted class entry.
    Fifo,
    /// Evict a uniformly random entry.
    Rand,
}

impl ReplacementPolicy {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            ReplacementPolicy::Lru => "LRU",
            ReplacementPolicy::Fifo => "FIFO",
            ReplacementPolicy::Rand => "RAND",
        }
    }
}

/// Per-class bookkeeping for one managed cache.
#[derive(Debug, Clone)]
struct ManagedCache {
    /// Classes currently cached (same set at every layer, as in CoCa).
    classes: Vec<usize>,
    /// Parallel: last-touch tick (LRU) or insert tick (FIFO).
    stamp: Vec<u64>,
    capacity: usize,
    clock: u64,
}

impl ManagedCache {
    fn new(capacity: usize) -> Self {
        Self {
            classes: Vec::new(),
            stamp: Vec::new(),
            capacity,
            clock: 0,
        }
    }

    fn contains(&self, class: usize) -> bool {
        self.classes.contains(&class)
    }

    fn touch(&mut self, class: usize, policy: ReplacementPolicy) {
        self.clock += 1;
        if policy == ReplacementPolicy::Lru {
            if let Some(i) = self.classes.iter().position(|&c| c == class) {
                self.stamp[i] = self.clock;
            }
        }
    }

    /// Inserts `class`, evicting per policy when full. Returns true if the
    /// set changed.
    fn insert(&mut self, class: usize, policy: ReplacementPolicy, rng: &mut SmallRng) -> bool {
        if self.contains(class) {
            return false;
        }
        self.clock += 1;
        if self.classes.len() >= self.capacity {
            let victim = match policy {
                ReplacementPolicy::Lru | ReplacementPolicy::Fifo => self
                    .stamp
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, &s)| s)
                    .map(|(i, _)| i)
                    .expect("non-empty cache"),
                ReplacementPolicy::Rand => rng.gen_range(0..self.classes.len()),
            };
            self.classes.swap_remove(victim);
            self.stamp.swap_remove(victim);
        }
        self.classes.push(class);
        self.stamp.push(self.clock);
        true
    }
}

/// Picks the fixed layer set for the baselines: highest expected benefit
/// per byte (`Υ·R/m`) from the shared-dataset profile, as many layers as
/// the paper's setup activates (it fixes the set, then varies entry
/// count).
pub fn fixed_high_benefit_layers(
    profile: &[f64],
    saved_ms: &[f64],
    entry_bytes: &[usize],
    count: usize,
) -> Vec<usize> {
    let mut scored: Vec<(f64, usize)> = (0..profile.len())
        .map(|j| (profile[j] * saved_ms[j] / entry_bytes[j].max(1) as f64, j))
        .collect();
    scored.sort_by(|a, b| b.0.total_cmp(&a.0));
    let mut layers: Vec<usize> = scored.into_iter().take(count).map(|(_, j)| j).collect();
    layers.sort_unstable();
    layers
}

/// Builds the [`LocalCache`] for the currently cached classes.
fn materialize(table: &GlobalCacheTable, layers: &[usize], managed: &ManagedCache) -> LocalCache {
    let mut out = Vec::with_capacity(layers.len());
    for &layer in layers {
        let mut cl = CacheLayer::new(layer);
        for &class in &managed.classes {
            if let Some(v) = table.get(class, layer) {
                cl.insert(class, v.to_vec());
            }
        }
        if !cl.is_empty() {
            out.push(cl);
        }
    }
    LocalCache::from_layers(out)
}

/// One replacement-policy client.
struct ReplacementClient {
    managed: ManagedCache,
    rng: SmallRng,
    cache: LocalCache,
    view: ClientFeatureView,
}

/// The replacement-policy method driver.
pub struct ReplacementDriver<'s> {
    scenario: &'s Scenario,
    policy: ReplacementPolicy,
    lookup_cfg: CocaConfig,
    table: GlobalCacheTable,
    layers: Vec<usize>,
    clients: Vec<ReplacementClient>,
    /// Pooled lookup buffer shared by all clients (frames are sequential).
    scratch: coca_core::LookupScratch,
}

impl<'s> ReplacementDriver<'s> {
    /// Builds the driver: `cache_size` entries per layer on `num_layers`
    /// fixed high-benefit layers.
    pub fn new(
        scenario: &'s Scenario,
        policy: ReplacementPolicy,
        cache_size: usize,
        num_layers: usize,
    ) -> Self {
        let rt = &scenario.rt;
        let lookup_cfg = CocaConfig::for_model(rt.arch().id);
        let table = seed_global_table(rt, scenario.seeds());
        let profile = profile_hit_ratios(rt, &lookup_cfg, &table, scenario.seeds());
        let saved: Vec<f64> = (0..rt.num_cache_points())
            .map(|j| rt.saved_if_hit_at(j).as_millis_f64())
            .collect();
        let bytes: Vec<usize> = (0..rt.num_cache_points())
            .map(|j| rt.entry_bytes(j))
            .collect();
        let layers = fixed_high_benefit_layers(&profile, &saved, &bytes, num_layers);
        let clients: Vec<ReplacementClient> = (0..scenario.profiles.len())
            .map(|k| {
                let managed = ManagedCache::new(cache_size);
                let cache = materialize(&table, &layers, &managed);
                ReplacementClient {
                    managed,
                    rng: scenario
                        .seeds()
                        .child("replacement")
                        .child_idx("client", k as u64)
                        .rng(),
                    cache,
                    view: ClientFeatureView::new(),
                }
            })
            .collect();
        Self {
            scenario,
            policy,
            lookup_cfg,
            table,
            layers,
            clients,
            scratch: coca_core::LookupScratch::new(),
        }
    }
}

impl MethodDriver for ReplacementDriver<'_> {
    type Request = NoMsg;
    type Alloc = NoMsg;
    type Query = NoMsg;
    type Reply = NoMsg;
    type Upload = NoMsg;

    fn name(&self) -> &str {
        self.policy.name()
    }

    fn process_frame(&mut self, k: usize, frame: &Frame) -> FrameStep<NoMsg> {
        let client = &mut self.clients[k];
        let res = infer_with_cache(
            &self.scenario.rt,
            &self.scenario.profiles[k],
            frame,
            &client.cache,
            &self.lookup_cfg,
            &mut client.view,
            &mut self.scratch,
        );
        match res.hit_point {
            Some(_) => client.managed.touch(res.predicted, self.policy),
            None => {
                // Miss: load the predicted class's centroid set.
                if client
                    .managed
                    .insert(res.predicted, self.policy, &mut client.rng)
                {
                    client.cache = materialize(&self.table, &self.layers, &client.managed);
                }
            }
        }
        FrameStep::Done(FrameOutcome {
            compute: res.latency,
            correct: res.correct,
            hit_point: res.hit_point,
        })
    }
}

/// Runs one replacement policy over the scenario through the generic
/// engine, with `cache_size` entries per layer on `num_layers` fixed
/// high-benefit layers.
pub fn run_replacement(
    scenario: &Scenario,
    policy: ReplacementPolicy,
    cache_size: usize,
    num_layers: usize,
    rounds: usize,
    frames_per_round: usize,
) -> MethodReport {
    run_replacement_with(
        scenario,
        policy,
        cache_size,
        num_layers,
        &DriveConfig::new(rounds, frames_per_round),
    )
}

/// Runs one replacement policy under explicit engine knobs — pass the
/// *same* [`DriveConfig`] to every method of a comparison so all rows
/// price identical network and boot conditions.
pub fn run_replacement_with(
    scenario: &Scenario,
    policy: ReplacementPolicy,
    cache_size: usize,
    num_layers: usize,
    drive_cfg: &DriveConfig,
) -> MethodReport {
    let mut driver = ReplacementDriver::new(scenario, policy, cache_size, num_layers);
    let report = drive(scenario, &mut driver, drive_cfg);
    MethodReport::from_engine(policy.name(), report)
}

/// Runs one replacement policy under an explicit [`DrivePlan`] — the
/// dynamic-scenario entry point. The managed caches are strictly local,
/// so churn needs no shared-state handling; a joiner starts with an empty
/// managed cache.
pub fn run_replacement_plan(
    scenario: &Scenario,
    policy: ReplacementPolicy,
    cache_size: usize,
    num_layers: usize,
    plan: &DrivePlan,
) -> MethodReport {
    let mut driver = ReplacementDriver::new(scenario, policy, cache_size, num_layers);
    let report = drive_plan(scenario, &mut driver, plan);
    MethodReport::from_engine(policy.name(), report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use coca_core::engine::ScenarioConfig;
    use coca_data::distribution::long_tail_weights;
    use coca_data::DatasetSpec;
    use coca_model::ModelId;
    use rand::SeedableRng;

    fn scenario(seed: u64) -> Scenario {
        let mut cfg = ScenarioConfig::new(ModelId::ResNet101, DatasetSpec::ucf101().subset(20));
        cfg.num_clients = 2;
        cfg.seed = seed;
        cfg.global_popularity = long_tail_weights(20, 20.0);
        Scenario::build(cfg)
    }

    #[test]
    fn lru_touch_protects_recent() {
        let mut m = ManagedCache::new(2);
        let mut rng = SmallRng::seed_from_u64(1);
        m.insert(0, ReplacementPolicy::Lru, &mut rng);
        m.insert(1, ReplacementPolicy::Lru, &mut rng);
        m.touch(0, ReplacementPolicy::Lru);
        m.insert(2, ReplacementPolicy::Lru, &mut rng); // evicts 1
        assert!(m.contains(0) && m.contains(2) && !m.contains(1));
    }

    #[test]
    fn fifo_ignores_touches() {
        let mut m = ManagedCache::new(2);
        let mut rng = SmallRng::seed_from_u64(2);
        m.insert(0, ReplacementPolicy::Fifo, &mut rng);
        m.insert(1, ReplacementPolicy::Fifo, &mut rng);
        m.touch(0, ReplacementPolicy::Fifo);
        m.insert(2, ReplacementPolicy::Fifo, &mut rng); // still evicts 0
        assert!(!m.contains(0) && m.contains(1) && m.contains(2));
    }

    #[test]
    fn rand_keeps_capacity() {
        let mut m = ManagedCache::new(3);
        let mut rng = SmallRng::seed_from_u64(3);
        for c in 0..10 {
            m.insert(c, ReplacementPolicy::Rand, &mut rng);
            assert!(m.classes.len() <= 3);
        }
    }

    #[test]
    fn fixed_layers_prefer_high_benefit() {
        let profile = [0.1, 0.5, 0.9, 0.2];
        let saved = [40.0, 30.0, 20.0, 10.0];
        let bytes = [100usize, 100, 100, 100];
        let layers = fixed_high_benefit_layers(&profile, &saved, &bytes, 2);
        assert_eq!(layers, vec![1, 2]);
    }

    #[test]
    fn replacement_run_saves_latency_on_longtail() {
        let s = scenario(97);
        let full = s.rt.full_compute().as_millis_f64();
        let r = run_replacement(&s, ReplacementPolicy::Lru, 10, 4, 3, 150);
        assert_eq!(r.frames, 2 * 3 * 150);
        assert!(r.mean_latency_ms < full, "{} vs {full}", r.mean_latency_ms);
        assert!(r.hit_ratio > 0.2, "hit ratio {}", r.hit_ratio);
    }

    #[test]
    fn policies_differ_deterministically() {
        let a = run_replacement(&scenario(98), ReplacementPolicy::Lru, 8, 4, 2, 120);
        let b = run_replacement(&scenario(98), ReplacementPolicy::Lru, 8, 4, 2, 120);
        assert_eq!(a.mean_latency_ms, b.mean_latency_ms);
        assert_eq!(a.frame_digest, b.frame_digest);
        // Tiny capacity forces constant eviction, where policies diverge.
        let c = run_replacement(&scenario(98), ReplacementPolicy::Lru, 3, 4, 2, 120);
        let d = run_replacement(&scenario(98), ReplacementPolicy::Rand, 3, 4, 2, 120);
        assert!(
            c.mean_latency_ms != d.mean_latency_ms || c.hit_ratio != d.hit_ratio,
            "LRU and RAND agree exactly: lru {} rand {}",
            c.mean_latency_ms,
            d.mean_latency_ms
        );
    }
}
